#ifndef ECL_CORE_PROPAGATE_HPP
#define ECL_CORE_PROPAGATE_HPP

// Per-edge Phase-2 propagation primitives, shared between the single-device
// solver (ecl_scc.cpp) and the fleet's sharded engine (src/fleet/).
//
// The sharded fixpoint (DESIGN.md §13) is only bit-identical to a
// single-device run because every shard executes the SAME monotone store and
// the SAME per-edge update rule — including path compression's lift writes
// and the chaos device's store-fault semantics. Extracting the primitives
// here keeps that "same rule" property a fact of the build rather than a
// convention between two copies of the code.
//
// Everything operates on a SigView: the slice of solver state the per-edge
// update needs (the signature arrays plus the device's fault hook). The
// single-device EclState and a fleet shard replica both provide exactly
// this slice.

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "core/ecl_scc.hpp"
#include "device/atomics.hpp"
#include "device/edge_partition.hpp"
#include "device/fault.hpp"
#include "device/signature_store.hpp"
#include "graph/digraph.hpp"

namespace ecl::scc::detail {

/// Grid size for an edge/vertex kernel under the selected threading mode.
inline unsigned grid_size(device::Device& dev, std::uint64_t items, bool persistent) {
  if (persistent)
    return std::min<std::uint64_t>(dev.profile().resident_blocks(),
                                   std::max<std::uint64_t>(1, dev.blocks_for(items)));
  return dev.blocks_for(items);
}

/// Work distribution for the edge phases: equal contiguous edge spans
/// (degenerate merge-path on the flat worklist, DESIGN.md §11) or the
/// classic block-cyclic chunks. Either way the body sees half-open
/// [lo, hi) index ranges covering exactly the block's edges.
template <typename Body>
void for_each_owned(const device::BlockContext& ctx, std::uint64_t total, bool edge_balanced,
                    Body&& body) {
  if (edge_balanced) {
    const device::EdgeSpan span = device::equal_edge_span(ctx.block_id, ctx.num_blocks, total);
    if (!span.empty()) body(span.begin, span.end);
  } else {
    ctx.for_each_chunk(total, body);
  }
}

/// The propagation-visible slice of a solver's state.
struct SigView {
  device::SignatureStore& sigs;
  /// Delayed-visibility / lost-update fault hook; null unless the device
  /// injects it for the current launch.
  device::FaultInjector* fault = nullptr;
};

/// Signature store dispatch: the paper's atomic-free monotonic store or a
/// CAS atomic max (§3.4). Under the delayed-visibility fault a store may be
/// deferred: dropped this round but reported as movement when it would have
/// changed the slot, so the propagation loop retries until it lands —
/// exactly the lost-update tolerance the monotonic store relies on.
/// Under the lost-update fault the store is dropped AND reported as no
/// movement: the fixpoint silently converges short of the true one, which
/// only the online certifier (core/verify.hpp) can detect downstream.
///
/// `owner` is the vertex whose signature the slot belongs to. Any reported
/// movement — including a deferred store's, so the retry round still sees
/// the edge as active — stamps the owner's frontier epoch with the current
/// round, keeping its incident edges in the active frontier.
inline bool store_max(const SigView& st, device::AtomicU32& slot, vid owner,
                      std::uint32_t value, const EclOptions& opts,
                      std::uint32_t round) noexcept {
  bool moved;
  if (st.fault && st.fault->lose_store()) return false;
  if (st.fault && st.fault->defer_store())
    moved = value > slot.load(std::memory_order_relaxed);
  else
    moved = opts.use_atomic_max ? device::atomic_fetch_max(slot, value)
                                : device::racy_store_max(slot, value);
  if (moved && opts.frontier_gating)
    st.sigs.epoch(owner).store(round, std::memory_order_relaxed);
  return moved;
}

inline bool store_min(const SigView& st, device::AtomicU32& slot, vid owner,
                      std::uint32_t value, const EclOptions& opts,
                      std::uint32_t round) noexcept {
  bool moved;
  if (st.fault && st.fault->lose_store()) return false;
  if (st.fault && st.fault->defer_store())
    moved = value < slot.load(std::memory_order_relaxed);
  else
    moved = opts.use_atomic_max ? device::atomic_fetch_min(slot, value)
                                : device::racy_store_min(slot, value);
  if (moved && opts.frontier_gating)
    st.sigs.epoch(owner).store(round, std::memory_order_relaxed);
  return moved;
}

/// Phase-2 body for one edge (u -> v). Returns true if any signature moved.
inline bool propagate_edge(const SigView& st, graph::Edge e, const EclOptions& opts,
                           std::uint32_t round) noexcept {
  const vid u = e.src;
  const vid v = e.dst;
  bool any = false;

  // out[u] <- max(out[u], out[v])   (compressed: out[out[v]], §3.3)
  std::uint32_t ov = st.sigs.vout(v).load(std::memory_order_relaxed);
  if (opts.path_compression) ov = st.sigs.vout(ov).load(std::memory_order_relaxed);
  const std::uint32_t ou = st.sigs.vout(u).load(std::memory_order_relaxed);
  if (ov > ou) {
    if (opts.path_compression && ou != u) {
      // Lift: ou is a descendant of u, so u's ancestors are ou's ancestors.
      const std::uint32_t iu = st.sigs.vin(u).load(std::memory_order_relaxed);
      any |= store_max(st, st.sigs.vin(ou), ou, iu, opts, round);
    }
    any |= store_max(st, st.sigs.vout(u), u, ov, opts, round);
  }

  // in[v] <- max(in[v], in[u])   (compressed: in[in[u]])
  std::uint32_t iu = st.sigs.vin(u).load(std::memory_order_relaxed);
  if (opts.path_compression) iu = st.sigs.vin(iu).load(std::memory_order_relaxed);
  const std::uint32_t iv = st.sigs.vin(v).load(std::memory_order_relaxed);
  if (iu > iv) {
    if (opts.path_compression && iv != v) {
      // Lift: iv is an ancestor of v, so v's descendants are iv's descendants.
      const std::uint32_t ovv = st.sigs.vout(v).load(std::memory_order_relaxed);
      any |= store_max(st, st.sigs.vout(iv), iv, ovv, opts, round);
    }
    any |= store_max(st, st.sigs.vin(v), v, iu, opts, round);
  }
  return any;
}

/// Minimum-ID propagation for one edge (the 4-signature variant): the
/// exact mirror of the maximum propagation, including path compression
/// (min_in[min_in[u]] <= min_in[u] stays an ancestor-or-self of v).
inline bool propagate_edge_min(const SigView& st, graph::Edge e, const EclOptions& opts,
                               std::uint32_t round) noexcept {
  const vid u = e.src;
  const vid v = e.dst;
  bool any = false;

  std::uint32_t ov = st.sigs.min_out(v).load(std::memory_order_relaxed);
  if (opts.path_compression) ov = st.sigs.min_out(ov).load(std::memory_order_relaxed);
  const std::uint32_t ou = st.sigs.min_out(u).load(std::memory_order_relaxed);
  if (ov < ou) {
    if (opts.path_compression && ou != u) {
      const std::uint32_t iu = st.sigs.min_in(u).load(std::memory_order_relaxed);
      any |= store_min(st, st.sigs.min_in(ou), ou, iu, opts, round);
    }
    any |= store_min(st, st.sigs.min_out(u), u, ov, opts, round);
  }

  std::uint32_t iu = st.sigs.min_in(u).load(std::memory_order_relaxed);
  if (opts.path_compression) iu = st.sigs.min_in(iu).load(std::memory_order_relaxed);
  const std::uint32_t iv = st.sigs.min_in(v).load(std::memory_order_relaxed);
  if (iu < iv) {
    if (opts.path_compression && iv != v) {
      const std::uint32_t ovv = st.sigs.min_out(v).load(std::memory_order_relaxed);
      any |= store_min(st, st.sigs.min_out(iv), iv, ovv, opts, round);
    }
    any |= store_min(st, st.sigs.min_in(v), v, iu, opts, round);
  }
  return any;
}

}  // namespace ecl::scc::detail

#endif  // ECL_CORE_PROPAGATE_HPP
