#ifndef ECL_CORE_REGISTRY_HPP
#define ECL_CORE_REGISTRY_HPP

// Name-based algorithm registry used by the examples and the benchmark
// harness: maps the configuration names of the paper's evaluation
// ("ecl-a100", "gpu-scc-titanv", "ispan", ...) to runnable closures.

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "core/result.hpp"

namespace ecl::device {
class Device;
}

namespace ecl::scc {

using SccAlgorithm = std::function<SccResult(const Digraph&)>;

/// Names of all registered algorithm configurations.
std::vector<std::string> algorithm_names();

/// Looks up an algorithm by name; throws std::invalid_argument for unknown
/// names (the message lists valid ones).
SccAlgorithm find_algorithm(const std::string& name);

/// Convenience: look up and run.
SccResult run_algorithm(const std::string& name, const Digraph& g);

/// True if the named configuration runs on the virtual device substrate
/// (and therefore honors a device's fault plan / block-schedule knobs).
bool algorithm_uses_device(const std::string& name);

/// Runs the named configuration on the caller's device instead of the
/// registry's process-wide one — the hook the chaos harness uses to sweep
/// fault plans. CPU configurations ignore `dev` and run normally.
SccResult run_algorithm_on(const std::string& name, const Digraph& g, device::Device& dev);

/// Resilient entry point: runs the named configuration, converts any thrown
/// exception into SccStatus::kException, intrinsically verifies the
/// labeling (verify_scc), and — whenever the labels are missing, partial,
/// or fail verification — recomputes them with serial Tarjan, recording the
/// fallback in SccMetrics. Always returns a complete, verified labeling;
/// `error` still reports what went wrong with the primary run. Unknown
/// names still throw std::invalid_argument (a caller bug, not a fault).
///
/// `reverse_hint`, when non-null, must be the reverse of `g`; the
/// certification rungs then skip their own O(V+E) reverse build. Callers
/// that certify many results against one graph (the fleet's stitched-shard
/// certificate, the service's per-epoch cache) build the reverse exactly
/// once and thread it through here.
SccResult run_resilient(const std::string& name, const Digraph& g,
                        const Digraph* reverse_hint = nullptr);

/// run_resilient with the caller's device: device-backed configurations run
/// on `dev` (honoring its fault plan — the hook the dynamic subsystem's
/// chaos tests use to perturb full rebuilds), CPU configurations ignore it.
/// The same always-complete, always-verified contract as run_resilient,
/// including the shared `reverse_hint` amortization.
SccResult run_resilient_on(const std::string& name, const Digraph& g, device::Device& dev,
                           const Digraph* reverse_hint = nullptr);

/// Runs the named configuration under an absolute wall-clock deadline — the
/// entry point of the request pipeline (src/service). ECL-SCC
/// configurations get the deadline plumbed into their fixpoint watchdog
/// (cancelled mid-fixpoint, StallPolicy::kReturnError so no hidden serial
/// fallback eats the remaining budget); configurations without a watchdog
/// run to completion and are post-checked. In every case a result that
/// finished after the deadline carries SccStatus::kDeadlineExceeded, so a
/// caller that honors the error never serves a deadline-violating answer.
/// Thrown exceptions are converted to SccStatus::kException; unknown names
/// still throw std::invalid_argument. `dev`, when non-null, routes
/// device-backed configurations the same way run_algorithm_on does.
SccResult run_with_deadline(const std::string& name, const Digraph& g,
                            std::chrono::steady_clock::time_point deadline,
                            device::Device* dev = nullptr);

}  // namespace ecl::scc

#endif  // ECL_CORE_REGISTRY_HPP
