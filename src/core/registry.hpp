#ifndef ECL_CORE_REGISTRY_HPP
#define ECL_CORE_REGISTRY_HPP

// Name-based algorithm registry used by the examples and the benchmark
// harness: maps the configuration names of the paper's evaluation
// ("ecl-a100", "gpu-scc-titanv", "ispan", ...) to runnable closures.

#include <functional>
#include <string>
#include <vector>

#include "core/result.hpp"

namespace ecl::scc {

using SccAlgorithm = std::function<SccResult(const Digraph&)>;

/// Names of all registered algorithm configurations.
std::vector<std::string> algorithm_names();

/// Looks up an algorithm by name; throws std::invalid_argument for unknown
/// names (the message lists valid ones).
SccAlgorithm find_algorithm(const std::string& name);

/// Convenience: look up and run.
SccResult run_algorithm(const std::string& name, const Digraph& g);

}  // namespace ecl::scc

#endif  // ECL_CORE_REGISTRY_HPP
