#include "core/hong.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>

#include "core/trim.hpp"

#include "graph/condensation.hpp"
#include "graph/reach.hpp"
#include "graph/subgraph.hpp"
#include "graph/wcc.hpp"

namespace ecl::scc {
namespace {

/// Sequential recursive Forward-Backward on one residual WCC (runs as an
/// OpenMP task, Hong's Phase 2). Operates on the induced subgraph so its
/// memory footprint is proportional to the piece, not to the whole graph;
/// an explicit work stack avoids recursion-depth limits on path-like
/// residues. Writes parent-graph labels.
void fb_recurse(const graph::Subgraph& sub, std::span<vid> labels,
                std::atomic<std::uint64_t>& fb_steps) {
  const Digraph& g = sub.graph;
  const Digraph rev = g.reverse();
  const vid n = g.num_vertices();

  // Work stack of local-ID subsets; piece membership via round tags.
  std::vector<std::vector<vid>> work;
  work.emplace_back(n);
  for (vid v = 0; v < n; ++v) work.back()[v] = v;

  std::vector<vid> tag(n, graph::kInvalidVid);
  std::vector<std::uint8_t> in_fwd(n, 0);
  std::vector<std::uint8_t> in_bwd(n, 0);
  vid next_tag = 0;
  std::vector<vid> queue;

  while (!work.empty()) {
    std::vector<vid> piece = std::move(work.back());
    work.pop_back();
    if (piece.empty()) continue;
    if (piece.size() == 1) {
      labels[sub.to_parent[piece[0]]] = sub.to_parent[piece[0]];
      continue;
    }
    fb_steps.fetch_add(1, std::memory_order_relaxed);

    // Pivot: the max parent ID, matching the library's label convention.
    const vid piece_tag = next_tag++;
    vid pivot = piece[0];
    for (vid v : piece) {
      tag[v] = piece_tag;
      if (sub.to_parent[v] > sub.to_parent[pivot]) pivot = v;
    }

    auto bfs = [&](const Digraph& dir, std::span<std::uint8_t> visited) {
      queue.clear();
      queue.push_back(pivot);
      visited[pivot] = 1;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        for (vid w : dir.out_neighbors(queue[i])) {
          if (tag[w] == piece_tag && !visited[w]) {
            visited[w] = 1;
            queue.push_back(w);
          }
        }
      }
    };
    bfs(g, in_fwd);
    bfs(rev, in_bwd);

    std::vector<vid> fwd_only;
    std::vector<vid> bwd_only;
    std::vector<vid> rest;
    for (vid v : piece) {
      const bool f = in_fwd[v];
      const bool b = in_bwd[v];
      if (f && b) {
        labels[sub.to_parent[v]] = sub.to_parent[pivot];  // the pivot SCC
      } else if (f) {
        fwd_only.push_back(v);
      } else if (b) {
        bwd_only.push_back(v);
      } else {
        rest.push_back(v);
      }
      in_fwd[v] = in_bwd[v] = 0;  // reset scratch for reuse
    }
    work.push_back(std::move(fwd_only));
    work.push_back(std::move(bwd_only));
    work.push_back(std::move(rest));
  }
}

}  // namespace

SccResult hong(const Digraph& g, const HongOptions& opts) {
  const vid n = g.num_vertices();
  SccResult result;
  result.labels.assign(n, graph::kInvalidVid);
  if (n == 0) return result;

  const int saved_threads = omp_get_max_threads();
  if (opts.num_threads > 0) omp_set_num_threads(static_cast<int>(opts.num_threads));

  const Digraph rev = g.reverse();
  std::vector<std::uint8_t> active(n, 1);
  const std::vector<eid> in_deg = g.in_degrees();

  // ---- Phase 1: Trim-1 plus one FB step for the giant SCC. ---------------
  vid remaining = n;
  {
    TrimView view{g, rev, {}, active, result.labels};
    remaining -= trim1(view, &result.metrics);
  }
  if (remaining > 0) {
    ++result.metrics.outer_iterations;
    vid pivot = graph::kInvalidVid;
    std::uint64_t best = 0;
    for (vid v = 0; v < n; ++v) {
      if (!active[v]) continue;
      const std::uint64_t score =
          (static_cast<std::uint64_t>(g.out_degree(v)) + 1) * (in_deg[v] + 1);
      if (pivot == graph::kInvalidVid || score > best) {
        best = score;
        pivot = v;
      }
    }

    // Forward/backward reachability over active vertices (level-parallel).
    auto reach = [&](const Digraph& dir) {
      std::vector<std::uint8_t> visited(n, 0);
      std::vector<vid> frontier{pivot};
      visited[pivot] = 1;
      std::vector<vid> next;
      while (!frontier.empty()) {
        ++result.metrics.propagation_rounds;
        next.clear();
#pragma omp parallel
        {
          std::vector<vid> local;
#pragma omp for nowait
          for (std::size_t i = 0; i < frontier.size(); ++i) {
            for (vid w : dir.out_neighbors(frontier[i])) {
              if (!active[w]) continue;
              std::atomic_ref<std::uint8_t> flag(visited[w]);
              if (flag.exchange(1, std::memory_order_relaxed) == 0) local.push_back(w);
            }
          }
#pragma omp critical
          next.insert(next.end(), local.begin(), local.end());
        }
        frontier.swap(next);
      }
      return visited;
    };
    const auto fwd = reach(g);
    const auto bwd = reach(rev);
    for (vid v = 0; v < n; ++v) {
      if (active[v] && fwd[v] && bwd[v]) {
        result.labels[v] = pivot;
        active[v] = 0;
        --remaining;
      }
    }
  }

  // ---- Phase 2: trims, WCC split, per-component FB tasks. -----------------
  if (remaining > 0) {
    TrimView view{g, rev, {}, active, result.labels};
    vid trimmed = trim1(view, &result.metrics);
    if (opts.trim2) {
      trimmed += trim2_pass(view);
      trimmed += trim1(view, &result.metrics);
    }
    remaining -= trimmed;
  }
  if (remaining > 0) {
    const auto wcc = graph::weakly_connected_components(g, rev, active);
    std::vector<std::vector<vid>> pieces(wcc.num_components);
    for (vid v = 0; v < n; ++v) {
      if (active[v]) pieces[wcc.labels[v]].push_back(v);
    }
    std::atomic<std::uint64_t> fb_steps{0};
    std::span<vid> labels(result.labels);
#pragma omp parallel
#pragma omp single
    {
      for (auto& piece : pieces) {
#pragma omp task firstprivate(piece) shared(fb_steps, labels, g)
        {
          const auto sub = graph::induced_subgraph(g, piece);
          fb_recurse(sub, labels, fb_steps);
        }
      }
    }
    result.metrics.outer_iterations += fb_steps.load(std::memory_order_relaxed);
  }

  if (opts.num_threads > 0) omp_set_num_threads(saved_threads);

  std::vector<vid> dense(result.labels.begin(), result.labels.end());
  result.num_components = graph::normalize_labels(dense);
  return result;
}

}  // namespace ecl::scc
