#include "core/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/ecl_scc.hpp"
#include "core/ecl_omp.hpp"
#include "core/ecl_serial.hpp"
#include "core/fb_trim.hpp"
#include "core/hong.hpp"
#include "core/ispan.hpp"
#include "core/kosaraju.hpp"
#include "core/tarjan.hpp"

namespace ecl::scc {
namespace {

device::Device& titanv_device() {
  static device::Device dev(device::titan_v_profile());
  return dev;
}

const std::vector<std::pair<std::string, SccAlgorithm>>& table() {
  static const std::vector<std::pair<std::string, SccAlgorithm>> algorithms = {
      {"tarjan", [](const Digraph& g) { return tarjan(g); }},
      {"kosaraju", [](const Digraph& g) { return kosaraju(g); }},
      {"ecl-serial", [](const Digraph& g) { return ecl_serial(g); }},
      {"ecl-a100", [](const Digraph& g) { return ecl_scc(g, shared_device()); }},
      {"ecl-titanv", [](const Digraph& g) { return ecl_scc(g, titanv_device()); }},
      {"gpu-scc-a100", [](const Digraph& g) { return fb_trim(g, shared_device()); }},
      {"gpu-scc-titanv", [](const Digraph& g) { return fb_trim(g, titanv_device()); }},
      {"ispan", [](const Digraph& g) { return ispan(g); }},
      {"hong", [](const Digraph& g) { return hong(g); }},
      {"ecl-omp", [](const Digraph& g) { return ecl_omp(g); }},
  };
  return algorithms;
}

}  // namespace

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, fn] : table()) names.push_back(name);
  return names;
}

SccAlgorithm find_algorithm(const std::string& name) {
  for (const auto& [candidate, fn] : table()) {
    if (candidate == name) return fn;
  }
  std::ostringstream msg;
  msg << "unknown SCC algorithm '" << name << "'; valid names:";
  for (const auto& valid : algorithm_names()) msg << ' ' << valid;
  throw std::invalid_argument(msg.str());
}

SccResult run_algorithm(const std::string& name, const Digraph& g) {
  return find_algorithm(name)(g);
}

}  // namespace ecl::scc
