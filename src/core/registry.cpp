#include "core/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/ecl_scc.hpp"
#include "core/ecl_omp.hpp"
#include "core/ecl_serial.hpp"
#include "core/fb_trim.hpp"
#include "core/hong.hpp"
#include "core/ispan.hpp"
#include "core/kosaraju.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"

namespace ecl::scc {
namespace {

device::Device& titanv_device() {
  static device::Device dev(device::titan_v_profile());
  return dev;
}

const std::vector<std::pair<std::string, SccAlgorithm>>& table() {
  static const std::vector<std::pair<std::string, SccAlgorithm>> algorithms = {
      {"tarjan", [](const Digraph& g) { return tarjan(g); }},
      {"kosaraju", [](const Digraph& g) { return kosaraju(g); }},
      {"ecl-serial", [](const Digraph& g) { return ecl_serial(g); }},
      {"ecl-a100", [](const Digraph& g) { return ecl_scc(g, shared_device()); }},
      {"ecl-titanv", [](const Digraph& g) { return ecl_scc(g, titanv_device()); }},
      // The seed implementation (all §10 + §11 levers off) kept runnable by
      // name so differential checks can compare against it end to end.
      {"ecl-classic",
       [](const Digraph& g) { return ecl_scc(g, shared_device(), ecl_hotpath_levers_off()); }},
      // The PR-4 hot path (§10 levers on, §11 load-balance levers off): the
      // baseline bench_loadbalance measures against, and the side-by-side
      // partner of the default (reordered, edge-balanced) configuration.
      {"ecl-hotpath",
       [](const Digraph& g) { return ecl_scc(g, shared_device(), ecl_loadbalance_levers_off()); }},
      {"gpu-scc-a100", [](const Digraph& g) { return fb_trim(g, shared_device()); }},
      {"gpu-scc-titanv", [](const Digraph& g) { return fb_trim(g, titanv_device()); }},
      {"ispan", [](const Digraph& g) { return ispan(g); }},
      {"hong", [](const Digraph& g) { return hong(g); }},
      {"ecl-omp", [](const Digraph& g) { return ecl_omp(g); }},
  };
  return algorithms;
}

/// Device-parameterized variants of the configurations that run on the
/// virtual device substrate. The a100/titanv split lives in the device
/// profile, so both map to the same solver here.
using DeviceAlgorithm = std::function<SccResult(const Digraph&, device::Device&)>;

const std::vector<std::pair<std::string, DeviceAlgorithm>>& device_table() {
  static const std::vector<std::pair<std::string, DeviceAlgorithm>> algorithms = {
      {"ecl-a100", [](const Digraph& g, device::Device& dev) { return ecl_scc(g, dev); }},
      {"ecl-titanv", [](const Digraph& g, device::Device& dev) { return ecl_scc(g, dev); }},
      {"ecl-classic",
       [](const Digraph& g, device::Device& dev) {
         return ecl_scc(g, dev, ecl_hotpath_levers_off());
       }},
      {"ecl-hotpath",
       [](const Digraph& g, device::Device& dev) {
         return ecl_scc(g, dev, ecl_loadbalance_levers_off());
       }},
      {"gpu-scc-a100", [](const Digraph& g, device::Device& dev) { return fb_trim(g, dev); }},
      {"gpu-scc-titanv", [](const Digraph& g, device::Device& dev) { return fb_trim(g, dev); }},
  };
  return algorithms;
}

}  // namespace

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, fn] : table()) names.push_back(name);
  return names;
}

SccAlgorithm find_algorithm(const std::string& name) {
  for (const auto& [candidate, fn] : table()) {
    if (candidate == name) return fn;
  }
  std::ostringstream msg;
  msg << "unknown SCC algorithm '" << name << "'; valid names:";
  for (const auto& valid : algorithm_names()) msg << ' ' << valid;
  throw std::invalid_argument(msg.str());
}

SccResult run_algorithm(const std::string& name, const Digraph& g) {
  return find_algorithm(name)(g);
}

bool algorithm_uses_device(const std::string& name) {
  for (const auto& [candidate, fn] : device_table()) {
    if (candidate == name) return true;
  }
  return false;
}

SccResult run_algorithm_on(const std::string& name, const Digraph& g, device::Device& dev) {
  for (const auto& [candidate, fn] : device_table()) {
    if (candidate == name) return fn(g, dev);
  }
  return run_algorithm(name, g);
}

namespace {

/// Shared tail of the resilient entry points: catch, verify, and recover
/// with serial Tarjan when the primary labeling is missing, partial, or
/// rejected.
SccResult run_resilient_impl(const SccAlgorithm& algorithm, const Digraph& g) {
  SccResult result;
  try {
    result = algorithm(g);
  } catch (const std::exception& e) {
    result = SccResult{};
    result.error = {SccStatus::kException, e.what()};
  }

  const bool complete = result.labels.size() == g.num_vertices() &&
                        std::none_of(result.labels.begin(), result.labels.end(),
                                     [](vid l) { return l == graph::kInvalidVid; });
  if (complete && verify_scc(g, result.labels).ok) return result;

  if (result.ok())
    result.error = {SccStatus::kVerifyFailed, "labeling failed intrinsic verification"};
  SccResult serial = tarjan(g);
  result.labels = std::move(serial.labels);
  result.num_components = serial.num_components;
  result.metrics.serial_fallback = true;
  result.metrics.fallback_vertices = g.num_vertices();
  return result;
}

}  // namespace

SccResult run_resilient(const std::string& name, const Digraph& g) {
  const SccAlgorithm algorithm = find_algorithm(name);  // unknown name: throws
  return run_resilient_impl(algorithm, g);
}

SccResult run_resilient_on(const std::string& name, const Digraph& g, device::Device& dev) {
  (void)find_algorithm(name);  // unknown name: throws before we touch the device
  return run_resilient_impl(
      [&name, &dev](const Digraph& graph) { return run_algorithm_on(name, graph, dev); }, g);
}

SccResult run_with_deadline(const std::string& name, const Digraph& g,
                            std::chrono::steady_clock::time_point deadline,
                            device::Device* dev) {
  (void)find_algorithm(name);  // unknown name: throws (a caller bug, not a fault)
  SccResult result;
  try {
    if (name == "ecl-a100" || name == "ecl-titanv") {
      EclOptions opts;
      opts.watchdog.deadline = deadline;
      opts.stall_policy = StallPolicy::kReturnError;
      result = ecl_scc(g, dev ? *dev : (name == "ecl-titanv" ? titanv_device() : shared_device()),
                       opts);
    } else if (dev) {
      result = run_algorithm_on(name, g, *dev);
    } else {
      result = run_algorithm(name, g);
    }
  } catch (const std::exception& e) {
    result = SccResult{};
    result.error = {SccStatus::kException, e.what()};
  }
  // Uniform post-check: configurations that cannot be cancelled mid-run
  // (and an ECL run that converged exactly at the wire) still must not
  // report a deadline-violating success.
  if (result.ok() && std::chrono::steady_clock::now() > deadline)
    result.error = {SccStatus::kDeadlineExceeded,
                    "run_with_deadline: '" + name + "' finished after the deadline"};
  return result;
}

}  // namespace ecl::scc
