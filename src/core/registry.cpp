#include "core/registry.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/ecl_scc.hpp"
#include "core/ecl_omp.hpp"
#include "core/ecl_serial.hpp"
#include "core/fb_trim.hpp"
#include "core/hong.hpp"
#include "core/ispan.hpp"
#include "core/kosaraju.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"

namespace ecl::scc {
namespace {

device::Device& titanv_device() {
  static device::Device dev(device::titan_v_profile());
  return dev;
}

const std::vector<std::pair<std::string, SccAlgorithm>>& table() {
  static const std::vector<std::pair<std::string, SccAlgorithm>> algorithms = {
      // Tarjan and Kosaraju name components by discovery index; every other
      // configuration names them by a member vertex. The online certifier's
      // O(V) completeness check (core/verify.hpp) relies on member naming
      // (labels[label] == label), so the two index-named configurations are
      // canonicalized at the registry boundary — an O(V) rewrite that does
      // not change the partition or the component count.
      {"tarjan",
       [](const Digraph& g) {
         SccResult r = tarjan(g);
         canonicalize_labels(r.labels);
         return r;
       }},
      {"kosaraju",
       [](const Digraph& g) {
         SccResult r = kosaraju(g);
         canonicalize_labels(r.labels);
         return r;
       }},
      {"ecl-serial", [](const Digraph& g) { return ecl_serial(g); }},
      {"ecl-a100", [](const Digraph& g) { return ecl_scc(g, shared_device()); }},
      {"ecl-titanv", [](const Digraph& g) { return ecl_scc(g, titanv_device()); }},
      // The seed implementation (all §10 + §11 levers off) kept runnable by
      // name so differential checks can compare against it end to end.
      {"ecl-classic",
       [](const Digraph& g) { return ecl_scc(g, shared_device(), ecl_hotpath_levers_off()); }},
      // The PR-4 hot path (§10 levers on, §11 load-balance levers off): the
      // baseline bench_loadbalance measures against, and the side-by-side
      // partner of the default (reordered, edge-balanced) configuration.
      {"ecl-hotpath",
       [](const Digraph& g) { return ecl_scc(g, shared_device(), ecl_loadbalance_levers_off()); }},
      // The PR-5 all-on configuration (§10 + §11 on, §15 high-diameter
      // levers off): the baseline bench_highdiameter measures against.
      {"ecl-loadbalance",
       [](const Digraph& g) { return ecl_scc(g, shared_device(), ecl_highdiameter_levers_off()); }},
      {"gpu-scc-a100", [](const Digraph& g) { return fb_trim(g, shared_device()); }},
      {"gpu-scc-titanv", [](const Digraph& g) { return fb_trim(g, titanv_device()); }},
      {"ispan", [](const Digraph& g) { return ispan(g); }},
      {"hong", [](const Digraph& g) { return hong(g); }},
      {"ecl-omp", [](const Digraph& g) { return ecl_omp(g); }},
  };
  return algorithms;
}

/// Device-parameterized variants of the configurations that run on the
/// virtual device substrate. The a100/titanv split lives in the device
/// profile, so both map to the same solver here.
using DeviceAlgorithm = std::function<SccResult(const Digraph&, device::Device&)>;

const std::vector<std::pair<std::string, DeviceAlgorithm>>& device_table() {
  static const std::vector<std::pair<std::string, DeviceAlgorithm>> algorithms = {
      {"ecl-a100", [](const Digraph& g, device::Device& dev) { return ecl_scc(g, dev); }},
      {"ecl-titanv", [](const Digraph& g, device::Device& dev) { return ecl_scc(g, dev); }},
      {"ecl-classic",
       [](const Digraph& g, device::Device& dev) {
         return ecl_scc(g, dev, ecl_hotpath_levers_off());
       }},
      {"ecl-hotpath",
       [](const Digraph& g, device::Device& dev) {
         return ecl_scc(g, dev, ecl_loadbalance_levers_off());
       }},
      {"ecl-loadbalance",
       [](const Digraph& g, device::Device& dev) {
         return ecl_scc(g, dev, ecl_highdiameter_levers_off());
       }},
      {"gpu-scc-a100", [](const Digraph& g, device::Device& dev) { return fb_trim(g, dev); }},
      {"gpu-scc-titanv", [](const Digraph& g, device::Device& dev) { return fb_trim(g, dev); }},
  };
  return algorithms;
}

}  // namespace

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, fn] : table()) names.push_back(name);
  return names;
}

SccAlgorithm find_algorithm(const std::string& name) {
  for (const auto& [candidate, fn] : table()) {
    if (candidate == name) return fn;
  }
  std::ostringstream msg;
  msg << "unknown SCC algorithm '" << name << "'; valid names:";
  for (const auto& valid : algorithm_names()) msg << ' ' << valid;
  throw std::invalid_argument(msg.str());
}

SccResult run_algorithm(const std::string& name, const Digraph& g) {
  return find_algorithm(name)(g);
}

bool algorithm_uses_device(const std::string& name) {
  for (const auto& [candidate, fn] : device_table()) {
    if (candidate == name) return true;
  }
  return false;
}

SccResult run_algorithm_on(const std::string& name, const Digraph& g, device::Device& dev) {
  for (const auto& [candidate, fn] : device_table()) {
    if (candidate == name) return fn(g, dev);
  }
  return run_algorithm(name, g);
}

namespace {

SccResult run_attempt(const SccAlgorithm& algorithm, const Digraph& g) {
  try {
    return algorithm(g);
  } catch (const std::exception& e) {
    SccResult result;
    result.error = {SccStatus::kException, e.what()};
    return result;
  }
}

bool complete_labeling(const SccResult& result, const Digraph& g) {
  return result.labels.size() == g.num_vertices() &&
         std::none_of(result.labels.begin(), result.labels.end(),
                      [](vid l) { return l == graph::kInvalidVid; });
}

/// Certification gate: a result may only leave the ladder when its labeling
/// is complete AND passes the online certificate. On failure the result's
/// error is upgraded to the structured cause (incomplete → kVerifyFailed if
/// nothing worse is recorded; certificate rejection → kCertificationFailed,
/// the silent-corruption signal) so the caller's retry chain can act on it.
bool certified(const Digraph& g, SccResult& result, const Digraph* reverse_hint = nullptr) {
  if (!complete_labeling(result, g)) {
    if (result.ok())
      result.error = {SccStatus::kVerifyFailed, "labeling is incomplete"};
    return false;
  }
  CertifyOptions opts;
  opts.reverse_hint = reverse_hint;
  const CertifyReport cert = certify_scc(g, result.labels, opts);
  result.metrics.certify_seconds += cert.seconds;
  if (cert.ok) {
    result.metrics.certified = true;
    return true;
  }
  result.error = {SccStatus::kCertificationFailed, cert.message};
  return false;
}

/// Recovery bookkeeping carried across ladder rungs so the served result
/// accounts for everything spent reaching it.
void merge_recovery_metrics(SccMetrics& into, const SccMetrics& from) {
  into.checkpoints_taken += from.checkpoints_taken;
  into.resumes += from.resumes;
  into.rounds_replayed += from.rounds_replayed;
  into.watchdog_trips += from.watchdog_trips;
  into.certify_seconds += from.certify_seconds;
  into.fresh_reruns += from.fresh_reruns;
  into.recovery_seconds += from.recovery_seconds;
}

/// Shared tail of the resilient entry points — the bounded recovery ladder
/// (DESIGN.md §12). Rung 1, checkpointed replay, lives INSIDE the solver
/// (EclOptions::checkpoint); this wrapper adds the outer rungs:
///
///   primary attempt ──certify──> serve
///        │ (incomplete / uncertified)
///   fresh rerun     ──certify──> serve   (new schedule; transient faults
///        │                               may have passed)
///   serial Tarjan   ──certify──> serve
///
/// A result that has a recorded error but complete, certified labels (the
/// solver's own serial fallback) is served as-is: the error documents what
/// was survived. A result that fails certification is NEVER served as
/// trustworthy — the final rung's labels travel with kCertificationFailed
/// and metrics.certified == false so service layers refuse them.
SccResult run_resilient_impl(const SccAlgorithm& algorithm, const Digraph& g,
                             const Digraph* reverse_hint = nullptr) {
  SccResult result = run_attempt(algorithm, g);
  // Every rung certifies against the same graph, so the reverse adjacency
  // (labeling-independent) is built once and shared. On the clean path this
  // is exactly the build certify_scc would have done internally; on the
  // recovery rungs it cuts each extra certification by one O(V+E) pass.
  // A caller that already holds the reverse (the fleet's stitched-shard
  // certification, the service's per-epoch cache) passes it as
  // `reverse_hint` so it is not rebuilt per call.
  std::optional<Digraph> local_reverse;
  if (reverse_hint == nullptr) {
    local_reverse.emplace(g.reverse());
    reverse_hint = &*local_reverse;
  }
  const Digraph& reverse = *reverse_hint;
  if (certified(g, result, &reverse)) return result;

  // Rung 2: one full fresh rerun. The schedule, launch ordering, and any
  // transient fault window differ, so a corruption that slipped past the
  // solver's internal replay often clears here.
  SccResult rerun = run_attempt(algorithm, g);
  merge_recovery_metrics(rerun.metrics, result.metrics);
  ++rerun.metrics.fresh_reruns;
  if (certified(g, rerun, &reverse)) return rerun;

  // Rung 3: serial Tarjan on the host — no device, no faults. Certified
  // like every other rung; a rejection here (which would mean the reference
  // implementation itself is wrong) is surfaced, not masked.
  SccResult final = std::move(rerun);
  SccResult serial = tarjan(g);
  canonicalize_labels(serial.labels);  // certifier requires member naming
  final.labels = std::move(serial.labels);
  final.num_components = serial.num_components;
  final.metrics.serial_fallback = true;
  final.metrics.fallback_vertices = g.num_vertices();
  final.metrics.certified = false;
  if (const SccError ladder_error = final.error; certified(g, final, &reverse))
    final.error = ladder_error;  // keep what was survived, labels are good
  return final;
}

}  // namespace

SccResult run_resilient(const std::string& name, const Digraph& g,
                        const Digraph* reverse_hint) {
  const SccAlgorithm algorithm = find_algorithm(name);  // unknown name: throws
  return run_resilient_impl(algorithm, g, reverse_hint);
}

SccResult run_resilient_on(const std::string& name, const Digraph& g, device::Device& dev,
                           const Digraph* reverse_hint) {
  (void)find_algorithm(name);  // unknown name: throws before we touch the device
  return run_resilient_impl(
      [&name, &dev](const Digraph& graph) { return run_algorithm_on(name, graph, dev); }, g,
      reverse_hint);
}

SccResult run_with_deadline(const std::string& name, const Digraph& g,
                            std::chrono::steady_clock::time_point deadline,
                            device::Device* dev) {
  (void)find_algorithm(name);  // unknown name: throws (a caller bug, not a fault)
  SccResult result;
  try {
    if (name == "ecl-a100" || name == "ecl-titanv") {
      EclOptions opts;
      opts.watchdog.deadline = deadline;
      opts.stall_policy = StallPolicy::kReturnError;
      result = ecl_scc(g, dev ? *dev : (name == "ecl-titanv" ? titanv_device() : shared_device()),
                       opts);
    } else if (dev) {
      result = run_algorithm_on(name, g, *dev);
    } else {
      result = run_algorithm(name, g);
    }
  } catch (const std::exception& e) {
    result = SccResult{};
    result.error = {SccStatus::kException, e.what()};
  }
  // Uniform post-check: configurations that cannot be cancelled mid-run
  // (and an ECL run that converged exactly at the wire) still must not
  // report a deadline-violating success.
  if (result.ok() && std::chrono::steady_clock::now() > deadline)
    result.error = {SccStatus::kDeadlineExceeded,
                    "run_with_deadline: '" + name + "' finished after the deadline"};
  return result;
}

}  // namespace ecl::scc
