#ifndef ECL_CORE_ECL_SCC_HPP
#define ECL_CORE_ECL_SCC_HPP

// ECL-SCC: the paper's primary contribution (§3).
//
// Max-ID propagation with edge removal, implemented in GPU-kernel style on
// the virtual device substrate. All four code optimizations studied in
// Fig. 14 are independent toggles so the ablation benchmark can disable
// them one at a time:
//
//  * async_phase2      — thread blocks iterate internally to a local fixed
//                        point, slashing kernel-launch count (§3.3);
//  * remove_scc_edges  — drop edges inside already-detected SCCs from the
//                        worklist, not only the cross-SCC edges (§3.3);
//  * path_compression  — propagate in[in[u]] / out[out[v]] and lift the
//                        signature of the overwritten value's vertex (§3.3);
//  * persistent_threads— resident grid with multiple edges per thread
//                        instead of one thread per edge (§3.4).
//
// Note on the second-level path compression: the paper states that before a
// signature value s of vertex v is overwritten by a larger value t, vertex
// s's signature is also conditionally updated. Updating s with t itself is
// not sound in general (t need not be reachable from / to s); this
// implementation uses the provably sound cross-signature form implied by
// the paper's own justification ("ancestors of v share v's descendants"):
// when in[v] is raised, the old value s is an ancestor of v, so out[s] is
// lifted with out[v]; symmetrically for out[u]. The fixed point then equals
// Algorithm 1's exactly (see DESIGN.md).

#include <functional>
#include <vector>

#include "core/result.hpp"
#include "core/watchdog.hpp"
#include "device/device.hpp"

namespace ecl::scc {

/// Checkpointed-resume policy (DESIGN.md §12). ECL-SCC's fixpoint is
/// monotone — signatures only move toward the fixed point — so ANY
/// quiescent snapshot (labels + signatures + worklist, taken at a grid
/// barrier) is a legal restart state: resuming propagation from it
/// converges to the same labeling as an uninterrupted run. Checkpoints let
/// a watchdog trip or worklist overflow replay recent work instead of
/// discarding the whole run.
struct CheckpointConfig {
  /// Master switch. Off = the pre-§12 behavior (one-shot run, no replay).
  bool enabled = true;
  /// Snapshot cadence inside Phase 2, in propagation sweeps. A snapshot is
  /// also taken at every outer-iteration boundary (label/worklist
  /// quiescent points). Smaller = less work replayed on a trip, more
  /// snapshot copies on the happy path.
  std::uint64_t sweep_interval = 32;
  /// Bounded recovery ladder rung 1: at most this many replays from the
  /// last checkpoint per run before the error escalates (rung 2 = fresh
  /// rerun, rung 3 = serial Tarjan; see core/registry.hpp).
  unsigned max_resumes = 2;
};

/// One quiescent-state snapshot of a running ECL-SCC fixpoint. Restoring
/// it and re-entering Phase 2 (skipping Phase 1, which would reset the
/// signatures) preserves all progress up to the snapshot.
struct FixpointCheckpoint {
  bool valid = false;
  std::uint64_t outer_iteration = 0;  ///< outer loop trips completed at snapshot
  std::vector<vid> labels;
  std::vector<graph::Edge> worklist;
  /// Signature arrays. Snapshotting labels alone would be unsound: under
  /// min_max_signatures a re-initialized min signature (vertex ID) can be
  /// LARGER than the checkpointed one, and a zero is a winning false value
  /// for min-propagation — so the full signature state travels with the
  /// checkpoint.
  std::vector<std::uint32_t> vin, vout;
  std::vector<std::uint32_t> min_in, min_out;  ///< empty unless 4-signature mode
};

/// What ecl_scc does when the fixpoint watchdog trips, the worklist
/// overflows, or the iteration guard fires.
enum class StallPolicy : std::uint8_t {
  /// Complete the labeling with Tarjan on the unlabeled residual subgraph
  /// and return it (the error is still recorded, and the fallback is noted
  /// in SccMetrics). This is the graceful-degradation default: callers
  /// always receive a full, verifiable labeling.
  kSerialFallback,
  /// Return immediately with partial labels (unlabeled vertices hold
  /// graph::kInvalidVid) and the structured error. num_components is 0.
  kReturnError,
};

struct EclOptions {
  bool async_phase2 = true;
  bool remove_scc_edges = true;
  bool path_compression = true;
  bool persistent_threads = true;
  /// Use CAS atomic-max instead of the paper's atomic-free monotonic store.
  bool use_atomic_max = false;
  /// The 4-signature min/max variant the paper describes but rejects
  /// (§3.3): also propagate minimum IDs, detecting at least TWO SCCs per
  /// cluster per outer iteration at the cost of doubled signature memory.
  /// Off by default, like the paper's shipped configuration.
  bool min_max_signatures = false;

  // --- Hot-path levers (DESIGN.md §10). Each preserves the exact fixpoint,
  // labeling, and overflow/fault semantics of the seed implementation and
  // is independently toggleable for the bench_hotpath ablation. -----------
  /// Phase-3 survivors are staged per block and committed to the next
  /// worklist buffer with one cursor fetch_add per chunk instead of one per
  /// edge (EdgeWorklist::ChunkAppender).
  bool chunked_worklist = true;
  /// Per-vertex epoch stamps let propagation sweeps skip edges whose
  /// endpoints are both quiescent, turning late fixpoint rounds from full
  /// re-sweeps into near-empty ones. Savings are reported in
  /// SccMetrics::edges_skipped / frontier_rounds.
  bool frontier_gating = true;
  /// Store each vertex's signature state in its own 64-byte-aligned slot
  /// (device/signature_store.hpp) instead of densely packed SoA arrays, so
  /// pool threads never false-share signature cache lines.
  bool padded_signatures = true;

  // --- Load-balance levers (DESIGN.md §11). Like the §10 levers, each is a
  // pure performance transform: all 8 combinations produce bit-identical
  // labels, fault semantics unchanged. ------------------------------------
  /// Distribute kernel blocks over per-worker claim ranges with
  /// steal-from-most-loaded (device/thread_pool.hpp) instead of one shared
  /// claim cursor, and use the pool's spin-then-park barrier between
  /// back-to-back launches.
  bool work_stealing = true;
  /// Phases 2/3 partition the flat edge worklist into equal contiguous
  /// EDGE spans per block (device/edge_partition.hpp) instead of
  /// block-cyclic thread-width chunks: each sweep scans the worklist once
  /// in order, and per-block edge work is reported to the device's
  /// imbalance histogram (LaunchStats::block_imbalance).
  bool edge_balanced = true;
  /// Relabel the graph with the hub-clustering permutation
  /// (graph/permute.hpp) before the run and remap the labels back (naming
  /// each component by its maximum ORIGINAL member, so raw labels stay
  /// bit-identical to the unreordered run). Top IDs on the widest-fan-out
  /// vertices make the winning max-ID saturate power-law clusters in few
  /// propagation rounds. Skipped when the permutation is the identity and
  /// under min_max_signatures (min-side labels name by minimum member,
  /// which a max-member remap cannot reproduce).
  bool hub_reorder = true;
  // --- High-diameter levers (DESIGN.md §15). Pure performance transforms
  // like the §10/§11 levers: every combination produces bit-identical
  // labels. Both target deep SCC-DAGs (meshes), where level-synchronous
  // rounds are the bottleneck. ---------------------------------------------
  /// Vertical granularity control (Wang et al., PAPERS.md): when a
  /// propagation step moves a vertex that has exactly ONE unsettled
  /// worklist successor, the worker chases that single-successor chain
  /// locally instead of waiting a full round per link, collapsing
  /// O(diameter) rounds into O(diameter / chain_cap). Chains are confined
  /// to the CURRENT worklist (never the raw CSR: Phase 3 removes cross-SCC
  /// edges, and propagating along a removed edge would be unsound).
  bool chain_chasing = true;
  /// Bound on one local chase (forward plus backward), keeping per-worker
  /// granularity bounded. Ignored when chain_chasing is off. Deep meshes
  /// routinely saturate a small cap (mobius-strip chases hit 64 exactly);
  /// with per-round chase dedup (ChainIndex round stamps) a long chase is
  /// walked once per round, so a generous cap collapses more rounds
  /// without the quadratic re-walk risk that made small caps necessary.
  std::uint32_t chain_cap = 256;
  /// Active-edge / worklist-size ratio below which a round chases. Dense
  /// heavy-movement rounds visit every chain edge anyway, so a chase there
  /// only duplicates work; the win is in the sparse tail, where a chase
  /// collapses whole rounds. Matches hashbag_density: the chase pays off in
  /// exactly the rounds the sparse frontier targets. Values >= 1 chase from
  /// the first round whose active count drops below m (tests use this to
  /// force the chaser).
  double chain_density = 0.05;
  /// Hash-bag sparse frontier (device/hash_bag.hpp): every signature
  /// movement in round r registers the vertex in a concurrent dedup bag;
  /// when the mover set is below hashbag_density of the worklist, round
  /// r+1 visits only edges incident to those movers instead of
  /// gate-scanning the whole worklist. Falls back to the dense sweep when
  /// the frontier re-densifies or the bag saturates. Forced off when a
  /// phase2_hook is installed (the hook's merges raise vertices the bag
  /// never saw) — the sharded fleet instead keeps chain chasing per shard.
  bool hashbag_frontier = true;
  /// Mover-count / worklist-size ratio below which a round goes sparse.
  double hashbag_density = 0.05;

  /// Safety guard on outer iterations; 0 means |V| + 2 (the theoretical
  /// bound is the number of SCCs). A trip is reported as
  /// SccStatus::kIterationGuard, subject to stall_policy — never thrown.
  std::uint64_t max_outer_iterations = 0;
  /// Stall detection around the outer and Phase-2 fixpoint loops.
  WatchdogConfig watchdog = WatchdogConfig::defaults();
  /// Degradation behavior on watchdog trip / overflow / guard.
  StallPolicy stall_policy = StallPolicy::kSerialFallback;
  /// Checkpointed resume (DESIGN.md §12): snapshot cadence and the bounded
  /// replay count attempted before a trip escalates to stall_policy.
  CheckpointConfig checkpoint;

  /// Fixpoint round hook (DESIGN.md §13): invoked on the control thread at
  /// every Phase-2 grid barrier, after the sweep's movement flag is read
  /// and before the loop decides whether to run another sweep.
  /// `local_changed` is this solver's own movement; the return value
  /// REPLACES it as the continue condition. An external coordinator can
  /// merge boundary signatures into the store here (the grid barrier makes
  /// it race-free) and keep the sweep loop alive until GLOBAL — not merely
  /// local — quiescence: max-merges commute with the in-kernel monotone
  /// stores, so a merge at this barrier is equivalent to the merged edges
  /// having been processed by the sweep itself. `round` is the global
  /// round clock; a hook that raises a signature under frontier_gating
  /// must stamp the vertex's epoch with it. Null = local movement decides
  /// (single-device behavior).
  std::function<bool(bool local_changed, std::uint32_t round)> phase2_hook;
};

/// All-off configuration (the "disable all 4" bar of Fig. 14). The hot-path
/// levers are left at their defaults: they postdate the paper's ablation.
EclOptions ecl_all_optimizations_off();

/// Default configuration with all six post-paper levers disabled — the
/// three §10 hot-path levers (chunked_worklist, frontier_gating,
/// padded_signatures) AND the three §11 load-balance levers
/// (work_stealing, edge_balanced, hub_reorder). This is the seed
/// implementation's behavior, registered as `ecl-classic`.
EclOptions ecl_hotpath_levers_off();

/// Default configuration with only the three §11 load-balance levers
/// disabled (hot-path levers stay on) — the PR-4 hot path, registered as
/// `ecl-hotpath`, and the baseline bench_loadbalance measures against.
EclOptions ecl_loadbalance_levers_off();

/// Default configuration with only the §15 high-diameter levers disabled
/// (chain_chasing, hashbag_frontier; fb_trim's multi_pivot/trim_chase are
/// the FbOptions analogues) — the PR-5 all-on configuration, registered as
/// `ecl-loadbalance`, and the baseline bench_highdiameter measures against.
EclOptions ecl_highdiameter_levers_off();

/// Runs ECL-SCC on the given virtual device. Labels are the maximum vertex
/// ID of each component (§3.2.1).
SccResult ecl_scc(const Digraph& g, device::Device& dev, const EclOptions& opts = {});

/// Convenience overload using a process-wide shared device (A100 profile).
SccResult ecl_scc(const Digraph& g, const EclOptions& opts = {});

/// The process-wide device used by the convenience overload.
device::Device& shared_device();

}  // namespace ecl::scc

#endif  // ECL_CORE_ECL_SCC_HPP
