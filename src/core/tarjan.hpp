#ifndef ECL_CORE_TARJAN_HPP
#define ECL_CORE_TARJAN_HPP

// Tarjan's sequential SCC algorithm (1972): the linear-time oracle the
// paper verifies every ECL-SCC run against (§4). Implemented iteratively
// with an explicit DFS stack so deep mesh graphs cannot overflow the call
// stack.

#include "core/result.hpp"

namespace ecl::scc {

/// Runs Tarjan's algorithm. Labels are dense component indices in reverse
/// topological discovery order (a component is numbered when popped).
SccResult tarjan(const Digraph& g);

}  // namespace ecl::scc

#endif  // ECL_CORE_TARJAN_HPP
