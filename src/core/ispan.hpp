#ifndef ECL_CORE_ISPAN_HPP
#define ECL_CORE_ISPAN_HPP

// iSpan-style parallel CPU SCC detection (Ji et al. [13]): the paper's CPU
// baseline (Tables 5-7, Figures 7/10/13).
//
// Two phases, as in the original: (1) detect the large SCC first — Trim-1,
// then a forward spanning tree (BFS) from a high-degree root and a backward
// reachability pass, the intersection being the large SCC; (2) detect the
// small SCCs — Trim-1/2/3 plus repeated Forward-Backward rounds on the
// residue. Parallelized with OpenMP (the original ships OpenMP and MPI
// versions; this is the shared-memory one).

#include "core/result.hpp"

namespace ecl::scc {

struct IspanOptions {
  /// OpenMP thread count; 0 keeps the runtime default.
  unsigned num_threads = 0;
  /// iSpan runs Trim-1 before and Trim-1/2/3 after large-SCC detection.
  bool trim2 = true;
  bool trim3 = true;
  std::uint64_t max_rounds = 0;  ///< 0 = |V| + 2 safety guard
};

SccResult ispan(const Digraph& g, const IspanOptions& opts = {});

}  // namespace ecl::scc

#endif  // ECL_CORE_ISPAN_HPP
