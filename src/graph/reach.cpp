#include "graph/reach.hpp"

#include <limits>

namespace ecl::graph {

std::vector<std::uint8_t> reachable_from(const Digraph& g, vid source) {
  const vid sources[1] = {source};
  return reachable_from(g, std::span<const vid>(sources));
}

std::vector<std::uint8_t> reachable_from(const Digraph& g, std::span<const vid> sources) {
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<vid> frontier;
  for (vid s : sources) {
    if (!visited[s]) {
      visited[s] = 1;
      frontier.push_back(s);
    }
  }
  std::vector<vid> next;
  while (!frontier.empty()) {
    next.clear();
    for (vid u : frontier) {
      for (vid v : g.out_neighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return visited;
}

std::vector<vid> bfs_levels(const Digraph& g, vid source) {
  constexpr vid kUnreached = std::numeric_limits<vid>::max();
  std::vector<vid> level(g.num_vertices(), kUnreached);
  std::vector<vid> frontier{source};
  level[source] = 0;
  vid depth = 0;
  std::vector<vid> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (vid u : frontier) {
      for (vid v : g.out_neighbors(u)) {
        if (level[v] == kUnreached) {
          level[v] = depth;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

bool is_reachable(const Digraph& g, vid u, vid v) {
  if (u == v) return true;
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<vid> stack{u};
  visited[u] = 1;
  while (!stack.empty()) {
    const vid x = stack.back();
    stack.pop_back();
    for (vid y : g.out_neighbors(x)) {
      if (y == v) return true;
      if (!visited[y]) {
        visited[y] = 1;
        stack.push_back(y);
      }
    }
  }
  return false;
}

}  // namespace ecl::graph
