#ifndef ECL_GRAPH_SUBGRAPH_HPP
#define ECL_GRAPH_SUBGRAPH_HPP

// Induced subgraph extraction, with the vertex mapping needed to transfer
// results (e.g. SCC labels computed on the subgraph) back to the parent
// graph. Used by task-parallel baselines that recurse on residual pieces.

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::graph {

struct Subgraph {
  Digraph graph;
  /// to_parent[local] = vertex ID in the parent graph.
  std::vector<vid> to_parent;
};

/// Subgraph induced by `members` (need not be sorted; duplicates are not
/// allowed). Local IDs follow the order of `members`.
Subgraph induced_subgraph(const Digraph& g, std::span<const vid> members);

/// Subgraph induced by all vertices with active[v] != 0.
Subgraph induced_subgraph(const Digraph& g, std::span<const std::uint8_t> active);

/// Subgraph induced by `members` of a graph held as mutable out-adjacency
/// lists (one vector per vertex) instead of CSR — the representation the
/// dynamic SCC engine maintains under streaming updates. Same contract as
/// the Digraph overload.
Subgraph induced_subgraph(std::span<const std::vector<vid>> out_adjacency,
                          std::span<const vid> members);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_SUBGRAPH_HPP
