#include "graph/scc_stats.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/condensation.hpp"

namespace ecl::graph {

std::vector<vid> component_sizes(std::span<const vid> labels) {
  std::vector<vid> dense(labels.begin(), labels.end());
  const vid k = normalize_labels(dense);
  std::vector<vid> sizes(k, 0);
  for (vid c : dense) ++sizes[c];
  return sizes;
}

SccStats compute_scc_stats(const Digraph& g, std::span<const vid> labels) {
  if (labels.size() != g.num_vertices())
    throw std::invalid_argument("compute_scc_stats: label count != vertex count");

  SccStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.avg_degree = s.num_vertices == 0
                     ? 0.0
                     : static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);

  for (vid v = 0; v < g.num_vertices(); ++v)
    s.max_out_degree = std::max(s.max_out_degree, g.out_degree(v));
  for (eid d : g.in_degrees()) s.max_in_degree = std::max(s.max_in_degree, d);

  std::vector<vid> dense(labels.begin(), labels.end());
  const vid k = normalize_labels(dense);
  s.num_sccs = k;

  std::vector<vid> sizes(k, 0);
  for (vid c : dense) ++sizes[c];
  for (vid size : sizes) {
    if (size == 1) ++s.size1_sccs;
    if (size == 2) ++s.size2_sccs;
    s.largest_scc = std::max(s.largest_scc, size);
  }

  s.dag_depth = (k == 0) ? 0 : dag_depth(condensation(g, dense, k));
  return s;
}

SccStatsRange aggregate_stats(std::span<const SccStats> stats) {
  SccStatsRange r;
  if (stats.empty()) return r;
  r.min_sccs = r.min_size1 = r.min_size2 = r.min_largest = r.min_depth =
      std::numeric_limits<vid>::max();
  double degree_sum = 0.0;
  eid edge_sum = 0;
  for (const SccStats& s : stats) {
    r.num_vertices = std::max(r.num_vertices, s.num_vertices);
    edge_sum += s.num_edges;
    degree_sum += s.avg_degree;
    r.max_in_degree = std::max(r.max_in_degree, s.max_in_degree);
    r.max_out_degree = std::max(r.max_out_degree, s.max_out_degree);
    r.min_sccs = std::min(r.min_sccs, s.num_sccs);
    r.max_sccs = std::max(r.max_sccs, s.num_sccs);
    r.min_size1 = std::min(r.min_size1, s.size1_sccs);
    r.max_size1 = std::max(r.max_size1, s.size1_sccs);
    r.min_size2 = std::min(r.min_size2, s.size2_sccs);
    r.max_size2 = std::max(r.max_size2, s.size2_sccs);
    r.min_largest = std::min(r.min_largest, s.largest_scc);
    r.max_largest = std::max(r.max_largest, s.largest_scc);
    r.min_depth = std::min(r.min_depth, s.dag_depth);
    r.max_depth = std::max(r.max_depth, s.dag_depth);
  }
  r.num_edges = edge_sum / stats.size();
  r.avg_degree = degree_sum / static_cast<double>(stats.size());
  return r;
}

}  // namespace ecl::graph
