#ifndef ECL_GRAPH_DEGREE_STATS_HPP
#define ECL_GRAPH_DEGREE_STATS_HPP

// Degree-distribution statistics: the property that separates the paper's
// two workload classes. Mesh graphs have near-constant degree (max <= 5);
// power-law graphs have heavy-tailed distributions with hub vertices
// (Table 3: max in-degree up to 1.29M).

#include <vector>

#include "graph/digraph.hpp"

namespace ecl::graph {

struct DegreeStats {
  eid min_out = 0;
  eid max_out = 0;
  eid max_in = 0;
  double avg = 0.0;
  double stddev_out = 0.0;
  /// Log2-binned out-degree histogram: bucket b counts vertices with
  /// degree in [2^b, 2^(b+1)); bucket 0 also counts degree-0 and 1.
  std::vector<vid> log2_histogram;
  /// Heavy-tail indicator: max out-degree divided by average degree. Mesh
  /// graphs sit near 1-2; power-law graphs reach into the hundreds.
  double hub_ratio = 0.0;
};

DegreeStats compute_degree_stats(const Digraph& g);

/// Out-degree-only variant: identical to `compute_degree_stats` except
/// `max_in` stays 0. Out-degrees are CSR offset differences, so this is a
/// single sequential O(n) pass with no per-edge work — cheap enough to run
/// as a per-solve pre-scan (the solver's hub_reorder gate), where the full
/// version's in-degree pass (O(m) random-access increments plus an O(n)
/// allocation) costs a measurable fraction of a small graph's solve time.
DegreeStats compute_out_degree_stats(const Digraph& g);

/// Heuristic classifier used by examples/diagnostics: true when the degree
/// distribution looks heavy-tailed (hub_ratio above `threshold`).
bool looks_power_law(const DegreeStats& stats, double threshold = 8.0);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_DEGREE_STATS_HPP
