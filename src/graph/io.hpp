#ifndef ECL_GRAPH_IO_HPP
#define ECL_GRAPH_IO_HPP

// Graph file IO. Supports the three formats commonly used to distribute the
// paper's inputs: plain edge lists (SNAP style), DIMACS, and MatrixMarket
// coordinate format (SuiteSparse Matrix Collection).

#include <iosfwd>
#include <string>

#include "graph/digraph.hpp"
#include "graph/update_stream.hpp"

namespace ecl::graph {

/// Plain edge list: one "src dst" pair per line; '#' and '%' start comments.
/// Vertex IDs need not be contiguous; the graph has max_id + 1 vertices.
Digraph read_edge_list(std::istream& in);
Digraph read_edge_list_file(const std::string& path);
void write_edge_list(std::ostream& out, const Digraph& g);

/// DIMACS format: "p sp <n> <m>" header, "a <src> <dst> [w]" arcs (1-based).
Digraph read_dimacs(std::istream& in);
void write_dimacs(std::ostream& out, const Digraph& g);

/// MatrixMarket coordinate format (general, pattern or weighted; weights
/// ignored). Entry "i j" becomes the directed edge i -> j (1-based).
Digraph read_matrix_market(std::istream& in);
void write_matrix_market(std::ostream& out, const Digraph& g);

/// Binary CSR format ("ECLG"): magic, version, vertex/edge counts, raw
/// offset and target arrays. Orders of magnitude faster to load than the
/// text formats for multi-million-edge graphs.
Digraph read_binary(std::istream& in);
void write_binary(std::ostream& out, const Digraph& g);

/// Edge-update stream: one update per line, "+u v" for an insertion and
/// "-u v" for a deletion ('#' and '%' start comments). The replayable input
/// of the dynamic SCC subsystem and bench_dynamic_updates.
UpdateStream read_update_stream(std::istream& in);
UpdateStream read_update_stream_file(const std::string& path);
void write_update_stream(std::ostream& out, const UpdateStream& stream);
void write_update_stream_file(const std::string& path, const UpdateStream& stream);

/// Dispatch by file extension: .mtx -> MatrixMarket, .gr/.dimacs -> DIMACS,
/// .eclg -> binary CSR, anything else -> edge list.
Digraph read_graph_file(const std::string& path);

/// Dispatch by extension like read_graph_file (.eclg binary, .mtx, .gr,
/// else edge list).
void write_graph_file(const std::string& path, const Digraph& g);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_IO_HPP
