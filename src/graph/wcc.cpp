#include "graph/wcc.hpp"

namespace ecl::graph {

WccResult weakly_connected_components(const Digraph& g) {
  const std::vector<std::uint8_t> active(g.num_vertices(), 1);
  return weakly_connected_components(g, g.reverse(), active);
}

WccResult weakly_connected_components(const Digraph& g, const Digraph& reverse,
                                      std::span<const std::uint8_t> active) {
  const vid n = g.num_vertices();
  WccResult result;
  result.labels.assign(n, kInvalidVid);

  std::vector<vid> stack;
  for (vid root = 0; root < n; ++root) {
    if (!active[root] || result.labels[root] != kInvalidVid) continue;
    const vid comp = result.num_components++;
    result.labels[root] = comp;
    stack.push_back(root);
    while (!stack.empty()) {
      const vid v = stack.back();
      stack.pop_back();
      for (const Digraph* dir : {&g, &reverse}) {
        for (vid w : dir->out_neighbors(v)) {
          if (active[w] && result.labels[w] == kInvalidVid) {
            result.labels[w] = comp;
            stack.push_back(w);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ecl::graph
