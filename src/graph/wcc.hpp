#ifndef ECL_GRAPH_WCC_HPP
#define ECL_GRAPH_WCC_HPP

// Weakly connected components: connectivity of the underlying undirected
// graph. Hong et al. [11] use WCC decomposition to split the residual
// graph into independent tasks after the giant SCC is removed (§2); the
// mesh workloads also use it to identify disconnected SCC clusters.

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::graph {

/// WCC labels for all vertices (dense IDs in [0, count), first-appearance
/// order). Edge direction is ignored.
struct WccResult {
  std::vector<vid> labels;
  vid num_components = 0;
};

WccResult weakly_connected_components(const Digraph& g);

/// WCC restricted to an active subset: inactive vertices get kInvalidVid
/// and are not traversed through.
WccResult weakly_connected_components(const Digraph& g, const Digraph& reverse,
                                      std::span<const std::uint8_t> active);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_WCC_HPP
