#ifndef ECL_GRAPH_REACH_HPP
#define ECL_GRAPH_REACH_HPP

// Breadth-first reachability utilities. Used by the Forward-Backward
// baseline, by verification (mutual reachability defines an SCC), and by
// graph statistics.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::graph {

/// BFS from `source`; returns visited flags (1 byte per vertex).
std::vector<std::uint8_t> reachable_from(const Digraph& g, vid source);

/// BFS from every vertex in `sources`.
std::vector<std::uint8_t> reachable_from(const Digraph& g, std::span<const vid> sources);

/// BFS levels from `source` (kInvalidVid for unreachable vertices);
/// the level of `source` itself is 0.
std::vector<vid> bfs_levels(const Digraph& g, vid source);

/// True iff v is reachable from u (early-exit BFS).
bool is_reachable(const Digraph& g, vid u, vid v);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_REACH_HPP
