#ifndef ECL_GRAPH_EDGE_LIST_HPP
#define ECL_GRAPH_EDGE_LIST_HPP

// Directed edge list: the mutable graph representation used while
// constructing inputs (generators, mesh sweep graphs, file loaders).

#include <cstdint>
#include <utility>
#include <vector>

namespace ecl::graph {

/// Vertex ID. 32 bits covers every input in the paper (max ~8.4M vertices).
using vid = std::uint32_t;
/// Edge index / edge count.
using eid = std::uint64_t;

inline constexpr vid kInvalidVid = static_cast<vid>(-1);

struct Edge {
  vid src;
  vid dst;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A growable list of directed edges.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(std::vector<Edge> edges) : edges_(std::move(edges)) {}

  void add(vid src, vid dst) { edges_.push_back({src, dst}); }
  void reserve(std::size_t n) { edges_.reserve(n); }

  std::size_t size() const noexcept { return edges_.size(); }
  bool empty() const noexcept { return edges_.empty(); }

  const Edge& operator[](std::size_t i) const noexcept { return edges_[i]; }
  auto begin() const noexcept { return edges_.begin(); }
  auto end() const noexcept { return edges_.end(); }

  std::vector<Edge>& raw() noexcept { return edges_; }
  const std::vector<Edge>& raw() const noexcept { return edges_; }

  /// Sorts by (src, dst) and removes duplicate edges.
  void sort_and_dedup();

  /// Removes self loops (u -> u).
  void remove_self_loops();

  /// Largest endpoint + 1, or 0 when empty: a lower bound on num_vertices.
  vid min_num_vertices() const noexcept;

 private:
  std::vector<Edge> edges_;
};

}  // namespace ecl::graph

#endif  // ECL_GRAPH_EDGE_LIST_HPP
