#ifndef ECL_GRAPH_CONDENSATION_HPP
#define ECL_GRAPH_CONDENSATION_HPP

// SCC condensation: contracting each strongly connected component to a
// single vertex yields a DAG (the paper calls its longest path the "DAG
// depth", reported in Tables 1-3 and central to ECL-SCC's complexity bound
// O(d c |E|)).

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::graph {

/// Renumbers arbitrary component labels to dense IDs [0, k). Returns the
/// number of components k and rewrites `labels` in place. Dense IDs are
/// assigned in order of first appearance, so the result is deterministic.
/// An empty span yields k = 0; labels >= labels.size() throw.
vid normalize_labels(std::span<vid> labels);

/// Condensation of g under `labels` (labels[v] in [0, k) for all v).
/// The returned DAG has k vertices and one edge per pair of components
/// connected by at least one original edge; self loops are omitted.
/// Throws std::invalid_argument when labels.size() != g.num_vertices(),
/// when a label is out of range, or when num_components == 0 for a
/// non-empty graph. The empty graph with num_components == 0 is valid and
/// condenses to the empty DAG.
Digraph condensation(const Digraph& g, std::span<const vid> labels, vid num_components);

/// Topological order of a DAG (Kahn). Throws std::invalid_argument if the
/// graph has a cycle.
std::vector<vid> topological_order(const Digraph& dag);

/// Length (in vertices) of the longest path in a DAG: the paper's "DAG
/// depth". A single vertex has depth 1.
vid dag_depth(const Digraph& dag);

/// True iff the graph contains no directed cycle.
bool is_dag(const Digraph& g);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_CONDENSATION_HPP
