#include "graph/permute.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ecl::graph {

std::vector<vid> random_permutation(vid n, Rng& rng) {
  std::vector<vid> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (vid i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.bounded(i)]);
  return perm;
}

std::vector<vid> invert_permutation(const std::vector<vid>& perm) {
  std::vector<vid> inv(perm.size());
  for (vid v = 0; v < perm.size(); ++v) inv[perm[v]] = v;
  return inv;
}

std::vector<vid> hub_clustering_permutation(const Digraph& g, double hub_factor) {
  const vid n = g.num_vertices();
  const eid m = g.num_edges();
  if (n == 0 || m == 0) return {};

  const std::vector<eid> in_deg = g.in_degrees();
  const double avg = 2.0 * static_cast<double>(m) / static_cast<double>(n);
  const auto threshold = static_cast<std::uint64_t>(hub_factor * avg);

  // hubs, sorted by total degree descending; ties keep ascending vertex
  // order (stable), so the permutation is deterministic.
  std::vector<std::pair<std::uint64_t, vid>> hubs;
  for (vid v = 0; v < n; ++v) {
    const std::uint64_t deg = static_cast<std::uint64_t>(g.out_degree(v)) + in_deg[v];
    if (deg > threshold) hubs.emplace_back(deg, v);
  }
  if (hubs.empty()) return {};
  std::stable_sort(hubs.begin(), hubs.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<vid> perm(n, kInvalidVid);
  vid next_top = n;
  for (const auto& [deg, v] : hubs) perm[v] = --next_top;
  vid next_low = 0;
  for (vid v = 0; v < n; ++v) {
    if (perm[v] == kInvalidVid) perm[v] = next_low++;
  }

  bool identity = true;
  for (vid v = 0; v < n && identity; ++v) identity = perm[v] == v;
  return identity ? std::vector<vid>{} : perm;
}

Digraph apply_permutation(const Digraph& g, const std::vector<vid>& perm) {
  const vid n = g.num_vertices();
  if (perm.size() != n) throw std::invalid_argument("apply_permutation: size mismatch");
  const std::vector<vid> inv = invert_permutation(perm);
  std::vector<eid> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (vid nv = 0; nv < n; ++nv) offsets[nv + 1] = offsets[nv] + g.out_degree(inv[nv]);
  std::vector<vid> targets(offsets[n]);
  for (vid nv = 0; nv < n; ++nv) {
    eid at = offsets[nv];
    for (vid w : g.out_neighbors(inv[nv])) targets[at++] = perm[w];
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[nv]),
              targets.begin() + static_cast<std::ptrdiff_t>(at));
  }
  return Digraph(std::move(offsets), std::move(targets));
}

PermutedGraph randomly_permute(const Digraph& g, Rng& rng) {
  PermutedGraph out;
  out.perm = random_permutation(g.num_vertices(), rng);
  out.graph = apply_permutation(g, out.perm);
  return out;
}

}  // namespace ecl::graph
