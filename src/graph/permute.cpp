#include "graph/permute.hpp"

#include <numeric>
#include <stdexcept>

namespace ecl::graph {

std::vector<vid> random_permutation(vid n, Rng& rng) {
  std::vector<vid> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (vid i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.bounded(i)]);
  return perm;
}

Digraph apply_permutation(const Digraph& g, const std::vector<vid>& perm) {
  const vid n = g.num_vertices();
  if (perm.size() != n) throw std::invalid_argument("apply_permutation: size mismatch");
  EdgeList edges;
  edges.reserve(g.num_edges());
  for (vid u = 0; u < n; ++u)
    for (vid v : g.out_neighbors(u)) edges.add(perm[u], perm[v]);
  return Digraph(n, edges);
}

PermutedGraph randomly_permute(const Digraph& g, Rng& rng) {
  PermutedGraph out;
  out.perm = random_permutation(g.num_vertices(), rng);
  out.graph = apply_permutation(g, out.perm);
  return out;
}

}  // namespace ecl::graph
