#ifndef ECL_GRAPH_PERMUTE_HPP
#define ECL_GRAPH_PERMUTE_HPP

// Vertex relabeling. ECL-SCC's expected O(log d) outer-iteration count
// relies on vertex IDs being randomly distributed (§3, §3.2), so the
// library provides explicit relabeling utilities; they are also used by
// property tests (SCC structure must be invariant under relabeling).

#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace ecl::graph {

/// Returns a uniformly random permutation p of [0, n) (p[old] = new).
std::vector<vid> random_permutation(vid n, Rng& rng);

/// Inverse permutation: returns q with q[perm[v]] = v.
std::vector<vid> invert_permutation(const std::vector<vid>& perm);

/// Hub-clustering permutation (DESIGN.md §11): vertices whose total degree
/// (in + out) exceeds hub_factor times the average are "hubs" and are
/// assigned the TOP vertex IDs, in descending degree order (the heaviest
/// hub gets n - 1). All other vertices keep their relative order in the
/// low ID range. Under ECL-SCC's max-ID propagation this makes the winning
/// IDs the ones with the widest fan-out — they saturate a cluster in few
/// rounds — and clusters the hot signature slots onto adjacent cache
/// lines. Returns an EMPTY vector when the permutation would be the
/// identity (no hubs, e.g. uniform-degree meshes): callers skip the
/// relabeling entirely.
std::vector<vid> hub_clustering_permutation(const Digraph& g, double hub_factor = 4.0);

/// Relabels every vertex v of g to perm[v]; perm must be a permutation of
/// [0, g.num_vertices()). Rebuilds the CSR directly (gather + per-vertex
/// sort), no intermediate edge list.
Digraph apply_permutation(const Digraph& g, const std::vector<vid>& perm);

/// Convenience: relabel with a fresh random permutation, returning both the
/// relabeled graph and the permutation used.
struct PermutedGraph {
  Digraph graph;
  std::vector<vid> perm;  ///< perm[old_id] = new_id
};
PermutedGraph randomly_permute(const Digraph& g, Rng& rng);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_PERMUTE_HPP
