#ifndef ECL_GRAPH_PERMUTE_HPP
#define ECL_GRAPH_PERMUTE_HPP

// Vertex relabeling. ECL-SCC's expected O(log d) outer-iteration count
// relies on vertex IDs being randomly distributed (§3, §3.2), so the
// library provides explicit relabeling utilities; they are also used by
// property tests (SCC structure must be invariant under relabeling).

#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace ecl::graph {

/// Returns a uniformly random permutation p of [0, n) (p[old] = new).
std::vector<vid> random_permutation(vid n, Rng& rng);

/// Relabels every vertex v of g to perm[v]; perm must be a permutation of
/// [0, g.num_vertices()).
Digraph apply_permutation(const Digraph& g, const std::vector<vid>& perm);

/// Convenience: relabel with a fresh random permutation, returning both the
/// relabeled graph and the permutation used.
struct PermutedGraph {
  Digraph graph;
  std::vector<vid> perm;  ///< perm[old_id] = new_id
};
PermutedGraph randomly_permute(const Digraph& g, Rng& rng);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_PERMUTE_HPP
