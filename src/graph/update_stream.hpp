#ifndef ECL_GRAPH_UPDATE_STREAM_HPP
#define ECL_GRAPH_UPDATE_STREAM_HPP

// Streaming edge updates: the input format of the dynamic SCC subsystem
// (src/dynamic). A stream is an ordered list of single-edge insertions and
// deletions applied to a base graph; the seeded generator produces valid
// mixed streams (every deletion targets an edge that exists at that point
// in the replay) so differential tests and benchmarks are reproducible
// from one seed. Text serialization ("+u v" / "-u v" lines) lives in
// graph/io.

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace ecl::graph {

/// One streaming update: insert or erase the directed edge src -> dst.
struct EdgeUpdate {
  enum class Kind : std::uint8_t { kInsert = 0, kErase = 1 };

  Kind kind = Kind::kInsert;
  vid src = 0;
  vid dst = 0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// An ordered sequence of edge updates.
using UpdateStream = std::vector<EdgeUpdate>;

/// Knobs for generate_update_stream.
struct UpdateStreamOptions {
  std::size_t num_updates = 1000;
  /// Probability that an update is an insertion (the rest are deletions;
  /// when the current edge set is empty a deletion draw falls back to an
  /// insertion, and vice versa when the graph is complete).
  double insert_fraction = 0.5;
  /// Deletions pick a uniformly random currently-present edge; insertions
  /// draw endpoint pairs uniformly until they hit an absent edge (bounded
  /// retries, falling back to deletion if the graph is saturated).
};

/// Generates a mixed insert/delete stream that is valid when replayed
/// against `base`: every deletion removes an edge present at that point,
/// every insertion adds an edge absent at that point. Deterministic for a
/// given (base, options, rng state). Graphs with zero vertices yield an
/// empty stream.
UpdateStream generate_update_stream(const Digraph& base, const UpdateStreamOptions& options,
                                    Rng& rng);

/// Replays a stream on top of a base graph from scratch (edge-set
/// semantics: duplicate inserts and erases of absent edges are no-ops).
/// The differential oracle for the incremental engine.
Digraph apply_updates(const Digraph& base, const UpdateStream& stream);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_UPDATE_STREAM_HPP
