#include "graph/update_stream.hpp"

#include <algorithm>
#include <unordered_set>

namespace ecl::graph {
namespace {

std::uint64_t edge_key(vid u, vid v) noexcept {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

UpdateStream generate_update_stream(const Digraph& base, const UpdateStreamOptions& options,
                                    Rng& rng) {
  UpdateStream stream;
  const vid n = base.num_vertices();
  if (n == 0 || options.num_updates == 0) return stream;
  stream.reserve(options.num_updates);

  // Live edge set mirrored two ways: a hash set for membership tests and a
  // vector for uniform deletion draws (swap-remove keeps both O(1)).
  std::unordered_set<std::uint64_t> present;
  std::vector<Edge> edges;
  for (const Edge& e : base.edges()) {
    present.insert(edge_key(e.src, e.dst));
    edges.push_back(e);
  }

  const std::uint64_t capacity = static_cast<std::uint64_t>(n) * n;
  for (std::size_t i = 0; i < options.num_updates; ++i) {
    bool insert = rng.chance(options.insert_fraction);
    if (edges.empty()) insert = true;
    if (present.size() >= capacity) insert = false;
    if (insert) {
      // Rejection-sample an absent edge. Dense graphs could spin here, so
      // the attempt count is bounded; on exhaustion fall back to deletion.
      bool placed = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const vid u = static_cast<vid>(rng.bounded(n));
        const vid v = static_cast<vid>(rng.bounded(n));
        if (!present.insert(edge_key(u, v)).second) continue;
        edges.push_back({u, v});
        stream.push_back({EdgeUpdate::Kind::kInsert, u, v});
        placed = true;
        break;
      }
      if (placed) continue;
      if (edges.empty()) continue;  // nothing to delete either; skip the slot
    }
    const std::size_t pick = rng.bounded(edges.size());
    const Edge e = edges[pick];
    edges[pick] = edges.back();
    edges.pop_back();
    present.erase(edge_key(e.src, e.dst));
    stream.push_back({EdgeUpdate::Kind::kErase, e.src, e.dst});
  }
  return stream;
}

Digraph apply_updates(const Digraph& base, const UpdateStream& stream) {
  std::unordered_set<std::uint64_t> present;
  for (const Edge& e : base.edges()) present.insert(edge_key(e.src, e.dst));
  for (const EdgeUpdate& u : stream) {
    if (u.kind == EdgeUpdate::Kind::kInsert)
      present.insert(edge_key(u.src, u.dst));
    else
      present.erase(edge_key(u.src, u.dst));
  }
  EdgeList edges;
  edges.reserve(present.size());
  for (std::uint64_t key : present)
    edges.add(static_cast<vid>(key >> 32), static_cast<vid>(key & 0xffffffffu));
  return Digraph(base.num_vertices(), edges);
}

}  // namespace ecl::graph
