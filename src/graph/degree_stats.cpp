#include "graph/degree_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ecl::graph {

DegreeStats compute_out_degree_stats(const Digraph& g) {
  DegreeStats s;
  const vid n = g.num_vertices();
  if (n == 0) return s;

  s.min_out = std::numeric_limits<eid>::max();
  double sum = 0.0;
  double sum_sq = 0.0;
  for (vid v = 0; v < n; ++v) {
    const eid d = g.out_degree(v);
    s.min_out = std::min(s.min_out, d);
    s.max_out = std::max(s.max_out, d);
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);

    unsigned bucket = 0;
    for (eid x = d; x > 1; x >>= 1) ++bucket;
    if (s.log2_histogram.size() <= bucket) s.log2_histogram.resize(bucket + 1, 0);
    ++s.log2_histogram[bucket];
  }

  s.avg = sum / static_cast<double>(n);
  const double variance = std::max(0.0, sum_sq / static_cast<double>(n) - s.avg * s.avg);
  s.stddev_out = std::sqrt(variance);
  s.hub_ratio = s.avg > 0 ? static_cast<double>(s.max_out) / s.avg : 0.0;
  return s;
}

DegreeStats compute_degree_stats(const Digraph& g) {
  DegreeStats s = compute_out_degree_stats(g);
  for (eid d : g.in_degrees()) s.max_in = std::max(s.max_in, d);
  return s;
}

bool looks_power_law(const DegreeStats& stats, double threshold) {
  return stats.hub_ratio > threshold;
}

}  // namespace ecl::graph
