#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecl::graph {

Digraph::Digraph(vid num_vertices, const EdgeList& edges) {
  offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices)
      throw std::out_of_range("Digraph: edge endpoint exceeds num_vertices");
    ++offsets_[e.src + 1];
  }
  for (std::size_t v = 0; v < num_vertices; ++v) offsets_[v + 1] += offsets_[v];

  targets_.resize(edges.size());
  std::vector<eid> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) targets_[cursor[e.src]++] = e.dst;

  // Sort each adjacency row and drop duplicates (keeps has_edge O(log d) and
  // makes construction order-independent).
  eid write = 0;
  eid row_begin = 0;
  for (vid v = 0; v < num_vertices; ++v) {
    const eid row_end = offsets_[v + 1];
    std::sort(targets_.begin() + static_cast<std::ptrdiff_t>(row_begin),
              targets_.begin() + static_cast<std::ptrdiff_t>(row_end));
    const eid new_begin = write;
    for (eid i = row_begin; i < row_end; ++i) {
      if (i == row_begin || targets_[i] != targets_[i - 1]) targets_[write++] = targets_[i];
    }
    row_begin = row_end;
    offsets_[v] = new_begin;
  }
  offsets_[num_vertices] = write;
  targets_.resize(write);
}

Digraph::Digraph(std::vector<eid> offsets, std::vector<vid> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  if (offsets_.empty() || offsets_.back() != targets_.size())
    throw std::invalid_argument("Digraph: inconsistent CSR arrays");
}

Digraph Digraph::reverse() const {
  const vid n = num_vertices();
  std::vector<eid> roffsets(static_cast<std::size_t>(n) + 1, 0);
  for (vid t : targets_) ++roffsets[t + 1];
  for (vid v = 0; v < n; ++v) roffsets[v + 1] += roffsets[v];
  std::vector<vid> rtargets(targets_.size());
  std::vector<eid> cursor(roffsets.begin(), roffsets.end() - 1);
  for (vid u = 0; u < n; ++u)
    for (vid v : out_neighbors(u)) rtargets[cursor[v]++] = u;
  Digraph rev;
  rev.offsets_ = std::move(roffsets);
  rev.targets_ = std::move(rtargets);
  // Rows are already sorted because u ascends during the fill.
  return rev;
}

std::vector<eid> Digraph::in_degrees() const {
  std::vector<eid> deg(num_vertices(), 0);
  for (vid t : targets_) ++deg[t];
  return deg;
}

EdgeList Digraph::edges() const {
  EdgeList list;
  list.reserve(targets_.size());
  for (vid u = 0; u < num_vertices(); ++u)
    for (vid v : out_neighbors(u)) list.add(u, v);
  return list;
}

bool Digraph::has_edge(vid u, vid v) const noexcept {
  const auto row = out_neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

}  // namespace ecl::graph
