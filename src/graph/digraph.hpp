#ifndef ECL_GRAPH_DIGRAPH_HPP
#define ECL_GRAPH_DIGRAPH_HPP

// Compressed-sparse-row directed graph.
//
// This is the substrate every SCC algorithm in the library operates on. It
// matches the representation used by the paper's CUDA code: a CSR adjacency
// structure with integer vertex IDs (the uniqueness of which ECL-SCC's
// max-ID propagation relies on).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"

namespace ecl::graph {

/// Immutable CSR directed graph over vertices [0, num_vertices).
class Digraph {
 public:
  Digraph() = default;

  /// Builds from an edge list. Parallel edges are collapsed; self loops are
  /// kept (they are harmless to every algorithm here and occur in real
  /// matrices). `num_vertices` must exceed every endpoint.
  Digraph(vid num_vertices, const EdgeList& edges);

  /// Builds directly from CSR arrays (offsets.size() == n + 1).
  Digraph(std::vector<eid> offsets, std::vector<vid> targets);

  vid num_vertices() const noexcept { return static_cast<vid>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  eid num_edges() const noexcept { return targets_.empty() ? 0 : static_cast<eid>(targets_.size()); }

  /// Out-neighbors of v, sorted ascending.
  std::span<const vid> out_neighbors(vid v) const noexcept {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  eid out_degree(vid v) const noexcept { return offsets_[v + 1] - offsets_[v]; }

  std::span<const eid> offsets() const noexcept { return offsets_; }
  std::span<const vid> targets() const noexcept { return targets_; }

  /// The transpose graph (every edge reversed).
  Digraph reverse() const;

  /// In-degree of every vertex (one O(|E|) pass).
  std::vector<eid> in_degrees() const;

  /// All edges as an edge list (source order).
  EdgeList edges() const;

  /// True if (u -> v) is an edge (binary search, O(log deg)).
  bool has_edge(vid u, vid v) const noexcept;

 private:
  std::vector<eid> offsets_{0};
  std::vector<vid> targets_;
};

}  // namespace ecl::graph

#endif  // ECL_GRAPH_DIGRAPH_HPP
