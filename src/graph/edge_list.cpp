#include "graph/edge_list.hpp"

#include <algorithm>

namespace ecl::graph {

void EdgeList::sort_and_dedup() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::remove_self_loops() {
  std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
}

vid EdgeList::min_num_vertices() const noexcept {
  vid hi = 0;
  for (const Edge& e : edges_) hi = std::max({hi, e.src + 1, e.dst + 1});
  return hi;
}

}  // namespace ecl::graph
