#include "graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ecl::graph {
namespace {

bool is_comment(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank line
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return in;
}

}  // namespace

Digraph read_edge_list(std::istream& in) {
  EdgeList edges;
  std::string line;
  // The writer emits a `# vertices N edges M` header; when one is present,
  // every parsed endpoint is validated against the declared count so a
  // corrupt ID is rejected at parse time instead of materializing as an
  // oversized CSR (or silently growing the vertex set), and the declared
  // edge count sizes the adjacency store up front (one allocation instead
  // of a doubling cascade on large inputs).
  std::uint64_t declared_n = 0;
  bool have_declared_n = false;
  while (std::getline(in, line)) {
    if (is_comment(line)) {
      std::istringstream header(line);
      char hash = 0;
      std::string word;
      std::uint64_t nn = 0;
      if (!have_declared_n && header >> hash && hash == '#' && header >> word &&
          word == "vertices" && header >> nn) {
        declared_n = nn;
        have_declared_n = true;
        std::uint64_t mm = 0;
        if (header >> word && word == "edges" && header >> mm) edges.reserve(mm);
      }
      continue;
    }
    std::istringstream ss(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(ss >> u >> v)) throw std::runtime_error("edge list: malformed line: " + line);
    if (have_declared_n && (u >= declared_n || v >= declared_n))
      throw std::runtime_error("edge list: vertex ID out of declared range [0, " +
                               std::to_string(declared_n) + ") in line: " + line);
    edges.add(static_cast<vid>(u), static_cast<vid>(v));
  }
  const vid n = have_declared_n ? static_cast<vid>(declared_n) : edges.min_num_vertices();
  return Digraph(n, edges);
}

Digraph read_edge_list_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Digraph& g) {
  out << "# vertices " << g.num_vertices() << " edges " << g.num_edges() << '\n';
  for (vid u = 0; u < g.num_vertices(); ++u)
    for (vid v : g.out_neighbors(u)) out << u << ' ' << v << '\n';
}

Digraph read_dimacs(std::istream& in) {
  EdgeList edges;
  vid n = 0;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ss(line);
    char tag = 0;
    ss >> tag;
    if (tag == 'p') {
      std::string kind;
      std::uint64_t nn = 0;
      std::uint64_t mm = 0;
      if (!(ss >> kind >> nn >> mm)) throw std::runtime_error("dimacs: malformed problem line");
      n = static_cast<vid>(nn);
      edges.reserve(mm);
      saw_header = true;
    } else if (tag == 'a' || tag == 'e') {
      if (!saw_header)
        throw std::runtime_error("dimacs: arc line before problem line: " + line);
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!(ss >> u >> v)) throw std::runtime_error("dimacs: malformed arc line: " + line);
      if (u == 0 || v == 0) throw std::runtime_error("dimacs: vertex IDs are 1-based");
      if (u > n || v > n)
        throw std::runtime_error("dimacs: vertex ID exceeds declared count " +
                                 std::to_string(n) + " in line: " + line);
      edges.add(static_cast<vid>(u - 1), static_cast<vid>(v - 1));
    }
  }
  if (!saw_header) throw std::runtime_error("dimacs: missing problem line");
  return Digraph(n, edges);
}

void write_dimacs(std::ostream& out, const Digraph& g) {
  out << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid u = 0; u < g.num_vertices(); ++u)
    for (vid v : g.out_neighbors(u)) out << "a " << (u + 1) << ' ' << (v + 1) << '\n';
}

Digraph read_matrix_market(std::istream& in) {
  std::string line;
  // Header (first non-comment line): rows cols entries.
  vid n = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  EdgeList edges;
  bool saw_size = false;
  while (std::getline(in, line)) {
    if (is_comment(line)) continue;
    std::istringstream ss(line);
    if (!saw_size) {
      std::uint64_t entries = 0;
      if (!(ss >> rows >> cols >> entries)) throw std::runtime_error("mtx: malformed size line");
      n = static_cast<vid>(std::max(rows, cols));
      edges.reserve(entries);
      saw_size = true;
    } else {
      std::uint64_t i = 0;
      std::uint64_t j = 0;
      if (!(ss >> i >> j)) throw std::runtime_error("mtx: malformed entry: " + line);
      if (i == 0 || j == 0) throw std::runtime_error("mtx: indices are 1-based");
      if (i > rows || j > cols)
        throw std::runtime_error("mtx: index exceeds declared size " + std::to_string(rows) +
                                 "x" + std::to_string(cols) + " in line: " + line);
      edges.add(static_cast<vid>(i - 1), static_cast<vid>(j - 1));
    }
  }
  if (!saw_size) throw std::runtime_error("mtx: missing size line");
  return Digraph(n, edges);
}

void write_matrix_market(std::ostream& out, const Digraph& g) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid u = 0; u < g.num_vertices(); ++u)
    for (vid v : g.out_neighbors(u)) out << (u + 1) << ' ' << (v + 1) << '\n';
}

UpdateStream read_update_stream(std::istream& in) {
  UpdateStream stream;
  std::string line;
  bool reserved = false;
  while (std::getline(in, line)) {
    if (is_comment(line)) {
      // The writer's `# updates N` header sizes the stream up front.
      std::istringstream header(line);
      char hash = 0;
      std::string word;
      std::uint64_t nn = 0;
      if (!reserved && header >> hash && hash == '#' && header >> word &&
          word == "updates" && header >> nn) {
        stream.reserve(nn);
        reserved = true;
      }
      continue;
    }
    std::istringstream ss(line);
    char sign = 0;
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(ss >> sign >> u >> v) || (sign != '+' && sign != '-'))
      throw std::runtime_error("update stream: malformed line: " + line);
    const auto kind =
        sign == '+' ? EdgeUpdate::Kind::kInsert : EdgeUpdate::Kind::kErase;
    stream.push_back({kind, static_cast<vid>(u), static_cast<vid>(v)});
  }
  return stream;
}

UpdateStream read_update_stream_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_update_stream(in);
}

void write_update_stream(std::ostream& out, const UpdateStream& stream) {
  out << "# updates " << stream.size() << '\n';
  for (const EdgeUpdate& u : stream) {
    out << (u.kind == EdgeUpdate::Kind::kInsert ? '+' : '-') << u.src << ' ' << u.dst << '\n';
  }
}

void write_update_stream_file(const std::string& path, const UpdateStream& stream) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_update_stream(out, stream);
  if (!out) throw std::runtime_error("write failed: " + path);
}

namespace {

constexpr char kBinaryMagic[4] = {'E', 'C', 'L', 'G'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("eclg: truncated file");
  return value;
}

}  // namespace

Digraph read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || !std::equal(magic, magic + 4, kBinaryMagic))
    throw std::runtime_error("eclg: bad magic");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kBinaryVersion) throw std::runtime_error("eclg: unsupported version");
  const auto n = read_pod<std::uint64_t>(in);
  const auto m = read_pod<std::uint64_t>(in);

  std::vector<eid> offsets(n + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid)));
  std::vector<vid> targets(m);
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(vid)));
  if (!in) throw std::runtime_error("eclg: truncated arrays");
  return Digraph(std::move(offsets), std::move(targets));
}

void write_binary(std::ostream& out, const Digraph& g) {
  out.write(kBinaryMagic, 4);
  write_pod(out, kBinaryVersion);
  write_pod(out, static_cast<std::uint64_t>(g.num_vertices()));
  write_pod(out, static_cast<std::uint64_t>(g.num_edges()));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(eid)));
  out.write(reinterpret_cast<const char*>(g.targets().data()),
            static_cast<std::streamsize>(g.targets().size() * sizeof(vid)));
}

Digraph read_graph_file(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".eclg")) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open graph file: " + path);
    return read_binary(in);
  }
  auto in = open_or_throw(path);
  if (ends_with(".mtx")) return read_matrix_market(in);
  if (ends_with(".gr") || ends_with(".dimacs")) return read_dimacs(in);
  return read_edge_list(in);
}

void write_graph_file(const std::string& path, const Digraph& g) {
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  std::ofstream out(path, ends_with(".eclg") ? std::ios::binary : std::ios::out);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  if (ends_with(".eclg")) write_binary(out, g);
  else if (ends_with(".mtx")) write_matrix_market(out, g);
  else if (ends_with(".gr") || ends_with(".dimacs")) write_dimacs(out, g);
  else write_edge_list(out, g);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace ecl::graph
