#include "graph/subgraph.hpp"

#include <stdexcept>

namespace ecl::graph {

Subgraph induced_subgraph(const Digraph& g, std::span<const vid> members) {
  std::vector<vid> to_local(g.num_vertices(), kInvalidVid);
  Subgraph sub;
  sub.to_parent.assign(members.begin(), members.end());
  for (vid local = 0; local < members.size(); ++local) {
    const vid parent = members[local];
    if (parent >= g.num_vertices()) throw std::out_of_range("induced_subgraph: bad member");
    if (to_local[parent] != kInvalidVid)
      throw std::invalid_argument("induced_subgraph: duplicate member");
    to_local[parent] = local;
  }

  EdgeList edges;
  for (vid local = 0; local < members.size(); ++local) {
    for (vid w : g.out_neighbors(members[local])) {
      if (to_local[w] != kInvalidVid) edges.add(local, to_local[w]);
    }
  }
  sub.graph = Digraph(static_cast<vid>(members.size()), edges);
  return sub;
}

Subgraph induced_subgraph(std::span<const std::vector<vid>> out_adjacency,
                          std::span<const vid> members) {
  std::vector<vid> to_local(out_adjacency.size(), kInvalidVid);
  Subgraph sub;
  sub.to_parent.assign(members.begin(), members.end());
  for (vid local = 0; local < members.size(); ++local) {
    const vid parent = members[local];
    if (parent >= out_adjacency.size()) throw std::out_of_range("induced_subgraph: bad member");
    if (to_local[parent] != kInvalidVid)
      throw std::invalid_argument("induced_subgraph: duplicate member");
    to_local[parent] = local;
  }

  EdgeList edges;
  for (vid local = 0; local < members.size(); ++local) {
    for (vid w : out_adjacency[members[local]]) {
      if (to_local[w] != kInvalidVid) edges.add(local, to_local[w]);
    }
  }
  sub.graph = Digraph(static_cast<vid>(members.size()), edges);
  return sub;
}

Subgraph induced_subgraph(const Digraph& g, std::span<const std::uint8_t> active) {
  std::vector<vid> members;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (active[v]) members.push_back(v);
  }
  return induced_subgraph(g, members);
}

}  // namespace ecl::graph
