#ifndef ECL_GRAPH_SCC_STATS_HPP
#define ECL_GRAPH_SCC_STATS_HPP

// Structural statistics of a directed graph and its SCC decomposition —
// exactly the columns reported by the paper's Tables 1, 2, and 3.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace ecl::graph {

/// One row of Table 1/2/3 for a single graph.
struct SccStats {
  vid num_vertices = 0;
  eid num_edges = 0;
  double avg_degree = 0.0;
  eid max_in_degree = 0;
  eid max_out_degree = 0;
  vid num_sccs = 0;
  vid size1_sccs = 0;
  vid size2_sccs = 0;
  vid largest_scc = 0;
  vid dag_depth = 0;
};

/// Computes all statistics given an SCC labeling of g. `labels` may use
/// arbitrary (not necessarily dense) component IDs; they are normalized
/// internally.
SccStats compute_scc_stats(const Digraph& g, std::span<const vid> labels);

/// Sizes of all components under `labels` (after normalization), indexed by
/// dense component ID.
std::vector<vid> component_sizes(std::span<const vid> labels);

/// Aggregated min/max over a family of graphs (the mesh tables report each
/// column as a [min, max] range across ordinates).
struct SccStatsRange {
  vid num_vertices = 0;
  eid num_edges = 0;
  double avg_degree = 0.0;
  eid max_in_degree = 0;
  eid max_out_degree = 0;
  vid min_sccs = 0, max_sccs = 0;
  vid min_size1 = 0, max_size1 = 0;
  vid min_size2 = 0, max_size2 = 0;
  vid min_largest = 0, max_largest = 0;
  vid min_depth = 0, max_depth = 0;
};

SccStatsRange aggregate_stats(std::span<const SccStats> stats);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_SCC_STATS_HPP
