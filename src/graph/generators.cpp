#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecl::graph {
namespace {

/// Power-law-ish vertex pick: squaring the uniform variate concentrates
/// probability mass on low ranks, approximating a heavy-tailed degree
/// distribution without a full Zipf inverse CDF.
vid skewed_pick(vid n, Rng& rng) {
  const double r = rng.uniform();
  return static_cast<vid>(static_cast<double>(n) * r * r * 0.999999);
}

}  // namespace

Digraph path_graph(vid n) {
  EdgeList edges;
  if (n > 0) edges.reserve(n - 1);
  for (vid v = 0; v + 1 < n; ++v) edges.add(v, v + 1);
  return Digraph(n, edges);
}

Digraph cycle_graph(vid n) {
  EdgeList edges;
  edges.reserve(n);
  for (vid v = 0; v < n; ++v) edges.add(v, (v + 1) % n);
  return Digraph(n, edges);
}

Digraph bidirectional_clique(vid n) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (vid u = 0; u < n; ++u)
    for (vid v = 0; v < n; ++v)
      if (u != v) edges.add(u, v);
  return Digraph(n, edges);
}

Digraph grid_dag(vid rows, vid cols) {
  EdgeList edges;
  auto at = [cols](vid i, vid j) { return i * cols + j; };
  for (vid i = 0; i < rows; ++i) {
    for (vid j = 0; j < cols; ++j) {
      if (i + 1 < rows) edges.add(at(i, j), at(i + 1, j));
      if (j + 1 < cols) edges.add(at(i, j), at(i, j + 1));
    }
  }
  return Digraph(rows * cols, edges);
}

Digraph cycle_chain(vid k, vid cycle_len) {
  if (cycle_len == 0) throw std::invalid_argument("cycle_chain: cycle_len must be > 0");
  EdgeList edges;
  const vid n = k * cycle_len;
  for (vid c = 0; c < k; ++c) {
    const vid base = c * cycle_len;
    if (cycle_len > 1) {
      for (vid i = 0; i < cycle_len; ++i) edges.add(base + i, base + (i + 1) % cycle_len);
    }
    if (c + 1 < k) edges.add(base, base + cycle_len);  // one-way bridge
  }
  return Digraph(n, edges);
}

Digraph random_digraph(vid n, eid m, Rng& rng) {
  EdgeList edges;
  edges.reserve(m);
  for (eid i = 0; i < m; ++i) {
    const vid u = static_cast<vid>(rng.bounded(n));
    const vid v = static_cast<vid>(rng.bounded(n));
    edges.add(u, v);
  }
  edges.remove_self_loops();
  return Digraph(n, edges);
}

Digraph rmat(unsigned scale, double edge_factor, Rng& rng, double a, double b, double c) {
  const vid n = vid{1} << scale;
  const eid m = static_cast<eid>(edge_factor * static_cast<double>(n));
  EdgeList edges;
  edges.reserve(m);
  for (eid i = 0; i < m; ++i) {
    vid u = 0;
    vid v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      // Quadrant probabilities (a | b / c | d) with mild per-level noise so
      // the generated graph is not exactly self-similar.
      const double na = a * rng.uniform(0.95, 1.05);
      const double nb = b * rng.uniform(0.95, 1.05);
      const double nc = c * rng.uniform(0.95, 1.05);
      if (r < na) {
        // top-left: no bits set
      } else if (r < na + nb) {
        v |= vid{1} << bit;
      } else if (r < na + nb + nc) {
        u |= vid{1} << bit;
      } else {
        u |= vid{1} << bit;
        v |= vid{1} << bit;
      }
    }
    if (u != v) edges.add(u, v);
  }
  return Digraph(n, edges);
}

Digraph scc_profile_graph(const SccProfile& profile, Rng& rng) {
  const vid n = profile.num_vertices;
  if (n == 0) return Digraph(0, EdgeList{});

  // --- Partition vertices into planted components. -------------------------
  // comp_of[v] = component index; components are assigned a layer each and
  // filler edges only flow toward strictly larger (layer, comp) keys.
  const vid giant_size = static_cast<vid>(profile.giant_fraction * static_cast<double>(n));

  std::vector<vid> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  for (vid i = n; i > 1; --i)
    std::swap(ids[i - 1], ids[rng.bounded(i)]);  // Fisher-Yates: random ID layout

  std::vector<std::vector<vid>> comps;
  std::size_t cursor = 0;
  auto take = [&](vid size) {
    size = static_cast<vid>(std::min<std::size_t>(size, n - cursor));
    if (size == 0) return false;
    std::vector<vid> members(ids.begin() + static_cast<std::ptrdiff_t>(cursor),
                             ids.begin() + static_cast<std::ptrdiff_t>(cursor + size));
    cursor += size;
    comps.push_back(std::move(members));
    return true;
  };

  if (giant_size >= 2) take(giant_size);
  for (vid i = 0; i < profile.size2_sccs && cursor + 2 <= n; ++i) take(2);
  for (vid i = 0; i < profile.mid_sccs && cursor + 3 <= n; ++i)
    take(static_cast<vid>(3 + rng.bounded(30)));
  while (cursor < n) take(1);

  const std::size_t num_comps = comps.size();
  const vid depth = std::max<vid>(1, profile.dag_depth);

  // Layer assignment: the first `depth` components form a backbone chain
  // guaranteeing the requested DAG depth; the rest get uniform layers.
  std::vector<vid> layer(num_comps);
  for (std::size_t ci = 0; ci < num_comps; ++ci)
    layer[ci] = (ci < depth) ? static_cast<vid>(ci) : static_cast<vid>(rng.bounded(depth));

  std::vector<vid> comp_of(n);
  for (std::size_t ci = 0; ci < num_comps; ++ci)
    for (vid v : comps[ci]) comp_of[v] = static_cast<vid>(ci);

  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(profile.avg_degree * static_cast<double>(n)));

  // Intra-component cycles make each planted component strongly connected.
  for (const auto& members : comps) {
    if (members.size() < 2) continue;
    for (std::size_t i = 0; i < members.size(); ++i)
      edges.add(members[i], members[(i + 1) % members.size()]);
  }

  // Backbone chain edges guarantee DAG depth >= `depth`.
  for (std::size_t ci = 0; ci + 1 < std::min<std::size_t>(depth, num_comps); ++ci)
    edges.add(comps[ci][0], comps[ci + 1][0]);

  // Filler edges: within a component they densify the SCC; across
  // components they are oriented by (layer, comp index), which is acyclic.
  const eid target_edges = static_cast<eid>(profile.avg_degree * static_cast<double>(n));
  auto key = [&](vid v) {
    return (static_cast<std::uint64_t>(layer[comp_of[v]]) << 32) | comp_of[v];
  };
  while (n >= 2 && edges.size() < target_edges) {
    vid u = profile.power_law ? skewed_pick(n, rng) : static_cast<vid>(rng.bounded(n));
    vid v = profile.power_law ? skewed_pick(n, rng) : static_cast<vid>(rng.bounded(n));
    if (u == v) continue;
    if (comp_of[u] == comp_of[v]) {
      if (comps[comp_of[u]].size() < 2) continue;  // never create new cycles
      edges.add(u, v);
    } else {
      if (key(u) == key(v)) continue;
      if (key(u) < key(v)) edges.add(u, v);
      else edges.add(v, u);
    }
  }
  return Digraph(n, edges);
}

}  // namespace ecl::graph
