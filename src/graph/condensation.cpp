#include "graph/condensation.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecl::graph {

vid normalize_labels(std::span<vid> labels) {
  std::vector<vid> remap(labels.size(), kInvalidVid);
  vid next = 0;
  for (vid& label : labels) {
    if (label >= labels.size()) throw std::invalid_argument("normalize_labels: label out of range");
    if (remap[label] == kInvalidVid) remap[label] = next++;
    label = remap[label];
  }
  return next;
}

Digraph condensation(const Digraph& g, std::span<const vid> labels, vid num_components) {
  if (labels.size() != g.num_vertices())
    throw std::invalid_argument("condensation: labels.size() != num_vertices");
  if (num_components == 0 && g.num_vertices() > 0)
    throw std::invalid_argument("condensation: zero components for a non-empty graph");
  for (vid label : labels)
    if (label >= num_components)
      throw std::invalid_argument("condensation: label >= num_components");
  EdgeList edges;
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (vid v : g.out_neighbors(u)) {
      if (labels[u] != labels[v]) edges.add(labels[u], labels[v]);
    }
  }
  return Digraph(num_components, edges);
}

std::vector<vid> topological_order(const Digraph& dag) {
  const vid n = dag.num_vertices();
  std::vector<eid> indeg = dag.in_degrees();
  std::vector<vid> order;
  order.reserve(n);
  std::vector<vid> ready;
  for (vid v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push_back(v);
  while (!ready.empty()) {
    const vid u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (vid v : dag.out_neighbors(u)) {
      if (--indeg[v] == 0) ready.push_back(v);
    }
  }
  if (order.size() != n) throw std::invalid_argument("topological_order: graph has a cycle");
  return order;
}

vid dag_depth(const Digraph& dag) {
  if (dag.num_vertices() == 0) return 0;
  const std::vector<vid> order = topological_order(dag);
  std::vector<vid> depth(dag.num_vertices(), 1);
  vid best = 1;
  for (vid u : order) {
    for (vid v : dag.out_neighbors(u)) {
      depth[v] = std::max(depth[v], static_cast<vid>(depth[u] + 1));
      best = std::max(best, depth[v]);
    }
  }
  return best;
}

bool is_dag(const Digraph& g) {
  // Self loops are cycles.
  for (vid v = 0; v < g.num_vertices(); ++v)
    if (g.has_edge(v, v)) return false;
  try {
    (void)topological_order(g);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace ecl::graph
