#ifndef ECL_GRAPH_GENERATORS_HPP
#define ECL_GRAPH_GENERATORS_HPP

// Synthetic directed-graph generators.
//
// Two roles in this reproduction:
//  * small structured graphs (paths, cycles, DAG grids, clique chains) used
//    throughout the test suite, and
//  * power-law / SCC-profile generators that stand in for the SuiteSparse
//    inputs of Table 3 (see DESIGN.md, substitution table).

#include <cstddef>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace ecl::graph {

/// Simple directed path 0 -> 1 -> ... -> n-1 (n trivial SCCs, DAG depth n).
Digraph path_graph(vid n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0 (one SCC of size n).
Digraph cycle_graph(vid n);

/// Fully bidirectional clique on n vertices (one SCC, n(n-1) edges).
Digraph bidirectional_clique(vid n);

/// 2-D grid DAG: vertex (i, j) -> (i+1, j) and (i, j+1). All-trivial SCCs
/// with DAG depth rows + cols - 1; a good stand-in for sweep-front shapes.
Digraph grid_dag(vid rows, vid cols);

/// Chain of `k` directed cycles of length `cycle_len`, consecutive cycles
/// joined by a one-way bridge edge. k SCCs forming a depth-k DAG: the
/// worst-case shape for Forward-Backward, the motivating case for ECL-SCC.
Digraph cycle_chain(vid k, vid cycle_len);

/// Erdős–Rényi G(n, m) digraph: m distinct directed edges chosen uniformly.
Digraph random_digraph(vid n, eid m, Rng& rng);

/// R-MAT power-law digraph with 2^scale vertices and approximately
/// edge_factor * 2^scale edges (Graph500 parameters a=.57 b=.19 c=.19).
Digraph rmat(unsigned scale, double edge_factor, Rng& rng,
             double a = 0.57, double b = 0.19, double c = 0.19);

/// Options describing the SCC profile of a synthetic graph; used to imitate
/// a Table 3 input (giant-SCC fraction, sprinkled small SCCs, DAG depth).
struct SccProfile {
  vid num_vertices = 1024;
  double avg_degree = 8.0;
  /// Fraction of vertices placed in one giant SCC (0 disables it).
  double giant_fraction = 0.0;
  /// Number of size-2 SCCs to embed.
  vid size2_sccs = 0;
  /// Number of mid-size SCCs (random sizes in [3, 32]) to embed.
  vid mid_sccs = 0;
  /// Approximate DAG depth of the acyclic residue (chain length of layers).
  vid dag_depth = 1;
  /// Use power-law (R-MAT style) endpoint selection for filler edges.
  bool power_law = true;
};

/// Builds a digraph realizing (approximately) the requested SCC profile.
/// Inter-component filler edges are added strictly "downhill" with respect
/// to a hidden layer order, so they never merge the planted SCCs.
Digraph scc_profile_graph(const SccProfile& profile, Rng& rng);

}  // namespace ecl::graph

#endif  // ECL_GRAPH_GENERATORS_HPP
