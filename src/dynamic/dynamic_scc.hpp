#ifndef ECL_DYNAMIC_DYNAMIC_SCC_HPP
#define ECL_DYNAMIC_DYNAMIC_SCC_HPP

// Dynamic SCC maintenance under streaming edge updates.
//
// The static algorithms in core/ recompute every component from scratch;
// real graph workloads mutate, and most single-edge updates touch a tiny
// region of the condensation DAG. DynamicScc keeps SCC labels and the
// condensation current across insert_edge / erase_edge / apply_batch
// streams:
//
//  * Insertion. An intra-component edge changes nothing. An inter-component
//    edge c(u) -> c(v) can only create a cycle when c(u) is reachable from
//    c(v) in the condensation; when it is, every component on a path
//    c(v) ->* c(u) is merged into one (two BFS passes over the maintained
//    condensation, O(affected region), never O(|E|)).
//  * Deletion. An inter-component edge only decrements a condensation edge
//    count. An intra-component deletion u -> v leaves the component
//    strongly connected iff u still reaches v inside it (a member-restricted
//    early-exit BFS); otherwise the component is dirty and is recomputed
//    locally via a registry algorithm on its induced subgraph
//    (graph/subgraph), splitting it in place. When the dirty region exceeds
//    the escalation threshold, the engine falls back to a full
//    run_resilient recompute with the configured heavy kernel (ECL-SCC by
//    default) — the paper's algorithm stays the heavy-lifting path.
//  * Epochs. Every applied update bumps a monotonically increasing epoch;
//    snapshot() hands out an immutable, shared label snapshot tagged with
//    its epoch so concurrent readers keep a consistent view while the
//    writer advances. Mutations and queries are internally synchronized
//    (single writer, many readers).
//
// Component IDs (component_of) are stable between updates but may be
// recycled by merges, splits, and full rebuilds — compare IDs only at a
// fixed epoch, or compare partitions via snapshots.

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/update_stream.hpp"

namespace ecl::device {
class Device;
}

namespace ecl::dynamic {

using graph::Digraph;
using graph::EdgeUpdate;
using graph::eid;
using graph::vid;

/// Tuning knobs and algorithm choices for DynamicScc.
struct DynamicOptions {
  /// Registry configuration used for the initial decomposition and for
  /// escalated full rebuilds (via run_resilient / run_resilient_on).
  std::string full_algorithm = "ecl-a100";
  /// Registry configuration used for local recomputes of one dirty
  /// component's induced subgraph.
  std::string local_algorithm = "tarjan";
  /// A dirty component escalates to a full rebuild when its member count
  /// reaches max(escalate_min_vertices, escalate_fraction * n). A threshold
  /// of zero escalates every split; make escalate_min_vertices huge to
  /// never escalate.
  double escalate_fraction = 0.25;
  vid escalate_min_vertices = 1u << 14;
  /// Optional device for the full-rebuild path (non-owning; must outlive
  /// the engine). Lets callers route rebuilds through a device carrying a
  /// chaos FaultPlan; run_resilient_on absorbs any injected failure.
  device::Device* device = nullptr;
};

/// Update-path counters (test and bench observability).
struct DynamicStats {
  std::uint64_t inserts = 0;                  ///< edge insertions applied
  std::uint64_t erases = 0;                   ///< edge deletions applied
  std::uint64_t intra_component_inserts = 0;  ///< insertions with both ends in one SCC
  std::uint64_t merges = 0;                   ///< insertion-triggered merge events
  std::uint64_t components_merged = 0;        ///< components absorbed by merges
  std::uint64_t splits = 0;                   ///< deletion-triggered local splits
  std::uint64_t components_created = 0;       ///< extra components created by splits
  std::uint64_t delete_fast_checks = 0;       ///< deletions absorbed by the reachability check
  std::uint64_t local_recomputes = 0;         ///< induced-subgraph SCC runs
  std::uint64_t full_rebuilds = 0;            ///< escalations to the heavy kernel
  std::uint64_t condensation_bfs_nodes = 0;   ///< components visited by cycle detection
};

/// Immutable labeling snapshot; valid forever, consistent as of `epoch`.
struct LabelSnapshot {
  std::uint64_t epoch = 0;
  vid num_components = 0;
  std::vector<vid> labels;  ///< labels[v] = component ID at `epoch`

  bool same_scc(vid u, vid v) const { return labels[u] == labels[v]; }
};

/// Incrementally maintained SCC decomposition of a fixed vertex set under a
/// stream of edge updates. Thread-safe: one writer at a time, any number of
/// concurrent readers.
class DynamicScc {
 public:
  explicit DynamicScc(const Digraph& g, DynamicOptions options = {});

  vid num_vertices() const noexcept { return n_; }

  // ---- Updates (exclusive) --------------------------------------------
  /// Inserts u -> v. Returns false (and changes nothing) when the edge is
  /// already present. Throws std::out_of_range for bad vertex IDs.
  bool insert_edge(vid u, vid v);

  /// Erases u -> v. Returns false when the edge is absent.
  bool erase_edge(vid u, vid v);

  /// Applies one update; returns whether the edge set changed.
  bool apply(const EdgeUpdate& update);

  /// Applies a stream in order under one writer critical section; returns
  /// the number of updates that changed the edge set.
  std::size_t apply_batch(std::span<const EdgeUpdate> updates);

  // ---- Queries (shared) -----------------------------------------------
  eid num_edges() const;
  vid num_components() const;
  std::uint64_t epoch() const;
  bool has_edge(vid u, vid v) const;
  bool same_scc(vid u, vid v) const;
  /// Component ID of v; stable only within an epoch (see header comment).
  vid component_of(vid v) const;
  /// Size of v's component.
  vid component_size(vid v) const;
  DynamicStats stats() const;
  const DynamicOptions& options() const noexcept { return options_; }

  /// Immutable labeling snapshot for concurrent readers; cached per epoch,
  /// so repeated calls between updates share one allocation.
  std::shared_ptr<const LabelSnapshot> snapshot() const;

  /// CSR materialization of the current edge set.
  Digraph graph() const;

  /// Materialization paired with the epoch it reflects, taken under one
  /// shared critical section so the pair stays consistent when writers run
  /// concurrently (the service's fresh-compute path depends on this to
  /// epoch-stamp backend results correctly).
  std::pair<Digraph, std::uint64_t> graph_with_epoch() const;

  /// The maintained condensation as a Digraph with dense IDs (assigned in
  /// first-appearance order of the live labels, matching normalize_labels
  /// over a from-scratch run). Always a DAG.
  Digraph condensation_graph() const;

 private:
  using CompEdges = std::unordered_map<vid, std::uint32_t>;

  bool insert_edge_locked(vid u, vid v);
  bool erase_edge_locked(vid u, vid v);
  void check_vertex(vid v) const;

  /// True when `to` is reachable from `from` in the condensation following
  /// comp_in_ (i.e. `to` reaches `from` forward). Marks the visited set.
  bool backward_reach(vid from, vid to);
  /// Merges every component on a path cv ->* cu (called after the backward
  /// pass marked the components reaching cu).
  void merge_cycle(vid cv, vid cu);
  /// Early-exit BFS u ->* v restricted to u's component members.
  bool reaches_within_component(vid u, vid v);
  /// Recomputes one dirty component's labels on its induced subgraph and
  /// splits it in place.
  void local_recompute(vid c);
  /// Escalation threshold test for a dirty region of `dirty` vertices.
  bool should_escalate(std::size_t dirty) const;
  /// Full recompute with the heavy kernel; resets all component state.
  void rebuild_from_scratch();
  Digraph materialize_graph() const;

  vid alloc_comp();
  void free_comp(vid c);

  DynamicOptions options_;
  vid n_ = 0;
  eid num_edges_ = 0;
  std::uint64_t epoch_ = 0;

  /// Sorted mutable adjacency (the CSR of graph/digraph is immutable).
  std::vector<std::vector<vid>> out_;
  std::vector<std::vector<vid>> in_;

  /// labels_[v] = component slot ID. Slots are recycled through free_comps_.
  std::vector<vid> labels_;
  std::vector<std::vector<vid>> members_;
  std::vector<CompEdges> comp_out_;  ///< condensation edges with multiplicity
  std::vector<CompEdges> comp_in_;
  std::vector<vid> free_comps_;
  vid num_components_ = 0;
  DynamicStats stats_;

  /// Stamped scratch marks (no O(n) clears on the update path).
  std::vector<std::uint64_t> comp_mark_;  ///< backward-reach visited set
  std::vector<std::uint64_t> merge_mark_; ///< merge-set membership
  std::vector<std::uint64_t> vmark_;      ///< vertex-level visited / member set
  std::uint64_t comp_stamp_ = 0;
  std::uint64_t merge_stamp_ = 0;
  std::uint64_t vstamp_ = 0;
  std::vector<vid> queue_;

  mutable std::shared_mutex mutex_;
  mutable std::mutex snapshot_mutex_;
  mutable std::shared_ptr<const LabelSnapshot> snapshot_cache_;
};

}  // namespace ecl::dynamic

#endif  // ECL_DYNAMIC_DYNAMIC_SCC_HPP
