#include "dynamic/dynamic_scc.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/registry.hpp"
#include "graph/condensation.hpp"
#include "graph/subgraph.hpp"

namespace ecl::dynamic {
namespace {

/// Inserts v into a sorted vector; returns false when already present.
bool sorted_insert(std::vector<vid>& vec, vid v) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

/// Removes v from a sorted vector; returns false when absent.
bool sorted_erase(std::vector<vid>& vec, vid v) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool sorted_contains(const std::vector<vid>& vec, vid v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace

DynamicScc::DynamicScc(const Digraph& g, DynamicOptions options)
    : options_(std::move(options)), n_(g.num_vertices()) {
  out_.resize(n_);
  in_.resize(n_);
  for (vid u = 0; u < n_; ++u) {
    const auto nbrs = g.out_neighbors(u);
    out_[u].assign(nbrs.begin(), nbrs.end());  // CSR neighbors are sorted + deduped
    for (vid v : nbrs) in_[v].push_back(u);
  }
  for (auto& nbrs : in_) std::sort(nbrs.begin(), nbrs.end());
  num_edges_ = g.num_edges();
  vmark_.assign(n_, 0);
  rebuild_from_scratch();
  stats_ = DynamicStats{};  // the initial decomposition is not a rebuild event
}

// ---- Public updates -------------------------------------------------------

bool DynamicScc::insert_edge(vid u, vid v) {
  std::unique_lock lock(mutex_);
  return insert_edge_locked(u, v);
}

bool DynamicScc::erase_edge(vid u, vid v) {
  std::unique_lock lock(mutex_);
  return erase_edge_locked(u, v);
}

bool DynamicScc::apply(const EdgeUpdate& update) {
  std::unique_lock lock(mutex_);
  return update.kind == EdgeUpdate::Kind::kInsert
             ? insert_edge_locked(update.src, update.dst)
             : erase_edge_locked(update.src, update.dst);
}

std::size_t DynamicScc::apply_batch(std::span<const EdgeUpdate> updates) {
  std::unique_lock lock(mutex_);
  std::size_t applied = 0;
  for (const EdgeUpdate& update : updates) {
    const bool changed = update.kind == EdgeUpdate::Kind::kInsert
                             ? insert_edge_locked(update.src, update.dst)
                             : erase_edge_locked(update.src, update.dst);
    applied += changed ? 1 : 0;
  }
  return applied;
}

// ---- Public queries -------------------------------------------------------

eid DynamicScc::num_edges() const {
  std::shared_lock lock(mutex_);
  return num_edges_;
}

vid DynamicScc::num_components() const {
  std::shared_lock lock(mutex_);
  return num_components_;
}

std::uint64_t DynamicScc::epoch() const {
  std::shared_lock lock(mutex_);
  return epoch_;
}

bool DynamicScc::has_edge(vid u, vid v) const {
  check_vertex(u);
  check_vertex(v);
  std::shared_lock lock(mutex_);
  return sorted_contains(out_[u], v);
}

bool DynamicScc::same_scc(vid u, vid v) const {
  check_vertex(u);
  check_vertex(v);
  std::shared_lock lock(mutex_);
  return labels_[u] == labels_[v];
}

vid DynamicScc::component_of(vid v) const {
  check_vertex(v);
  std::shared_lock lock(mutex_);
  return labels_[v];
}

vid DynamicScc::component_size(vid v) const {
  check_vertex(v);
  std::shared_lock lock(mutex_);
  return static_cast<vid>(members_[labels_[v]].size());
}

DynamicStats DynamicScc::stats() const {
  std::shared_lock lock(mutex_);
  return stats_;
}

std::shared_ptr<const LabelSnapshot> DynamicScc::snapshot() const {
  std::shared_lock lock(mutex_);
  std::lock_guard cache_lock(snapshot_mutex_);
  if (!snapshot_cache_ || snapshot_cache_->epoch != epoch_) {
    auto snap = std::make_shared<LabelSnapshot>();
    snap->epoch = epoch_;
    snap->num_components = num_components_;
    snap->labels = labels_;
    snapshot_cache_ = std::move(snap);
  }
  return snapshot_cache_;
}

Digraph DynamicScc::graph() const {
  std::shared_lock lock(mutex_);
  return materialize_graph();
}

std::pair<Digraph, std::uint64_t> DynamicScc::graph_with_epoch() const {
  std::shared_lock lock(mutex_);
  return {materialize_graph(), epoch_};
}

Digraph DynamicScc::condensation_graph() const {
  std::shared_lock lock(mutex_);
  // Dense IDs in first-appearance order over the vertex array, matching
  // normalize_labels on a from-scratch labeling of the same partition.
  std::vector<vid> remap(members_.size(), graph::kInvalidVid);
  std::vector<vid> order;  // slot IDs in dense order
  order.reserve(num_components_);
  for (vid v = 0; v < n_; ++v) {
    if (remap[labels_[v]] == graph::kInvalidVid) {
      remap[labels_[v]] = static_cast<vid>(order.size());
      order.push_back(labels_[v]);
    }
  }
  graph::EdgeList edges;
  for (vid slot : order) {
    for (const auto& [target, count] : comp_out_[slot]) {
      edges.add(remap[slot], remap[target]);
    }
  }
  return Digraph(static_cast<vid>(order.size()), edges);
}

// ---- Internals ------------------------------------------------------------

void DynamicScc::check_vertex(vid v) const {
  if (v >= n_) throw std::out_of_range("DynamicScc: vertex ID out of range");
}

bool DynamicScc::insert_edge_locked(vid u, vid v) {
  check_vertex(u);
  check_vertex(v);
  if (!sorted_insert(out_[u], v)) return false;
  sorted_insert(in_[v], u);
  ++num_edges_;
  ++stats_.inserts;
  ++epoch_;
  const vid cu = labels_[u];
  const vid cv = labels_[v];
  if (cu == cv) {
    ++stats_.intra_component_inserts;
    return true;
  }
  ++comp_out_[cu][cv];
  ++comp_in_[cv][cu];
  // The new condensation edge cu -> cv closes a cycle iff cu was already
  // reachable from cv; every component on a path cv ->* cu merges.
  if (backward_reach(cu, cv)) merge_cycle(cv, cu);
  return true;
}

bool DynamicScc::erase_edge_locked(vid u, vid v) {
  check_vertex(u);
  check_vertex(v);
  if (!sorted_erase(out_[u], v)) return false;
  sorted_erase(in_[v], u);
  --num_edges_;
  ++stats_.erases;
  ++epoch_;
  const vid cu = labels_[u];
  const vid cv = labels_[v];
  if (cu != cv) {
    // Removing an inter-component edge never changes the partition; it can
    // only drop one condensation edge.
    auto& fwd = comp_out_[cu];
    const auto it = fwd.find(cv);
    if (it != fwd.end() && --it->second == 0) fwd.erase(it);
    auto& bwd = comp_in_[cv];
    const auto jt = bwd.find(cu);
    if (jt != bwd.end() && --jt->second == 0) bwd.erase(jt);
    return true;
  }
  if (u == v) return true;  // dropping a self loop never splits anything
  // The component stays strongly connected iff u still reaches v inside it:
  // any former x ->* y walk rerouted its uses of (u, v) through that path.
  if (reaches_within_component(u, v)) {
    ++stats_.delete_fast_checks;
    return true;
  }
  if (should_escalate(members_[cu].size())) {
    ++stats_.full_rebuilds;
    rebuild_from_scratch();
    return true;
  }
  local_recompute(cu);
  return true;
}

bool DynamicScc::backward_reach(vid from, vid to) {
  ++comp_stamp_;
  queue_.clear();
  queue_.push_back(from);
  comp_mark_[from] = comp_stamp_;
  bool found = from == to;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const vid c = queue_[head];
    for (const auto& [source, count] : comp_in_[c]) {
      if (comp_mark_[source] == comp_stamp_) continue;
      comp_mark_[source] = comp_stamp_;
      if (source == to) found = true;
      queue_.push_back(source);
    }
  }
  stats_.condensation_bfs_nodes += queue_.size();
  return found;
}

void DynamicScc::merge_cycle(vid cv, [[maybe_unused]] vid cu) {
  // Forward pass from cv restricted to components that reach cu (the
  // backward pass's marks): exactly the components on cv ->* cu paths
  // (cu itself is identified by the marks, not consulted directly).
  ++merge_stamp_;
  std::vector<vid> merged;
  merged.push_back(cv);
  merge_mark_[cv] = merge_stamp_;
  for (std::size_t head = 0; head < merged.size(); ++head) {
    const vid c = merged[head];
    for (const auto& [target, count] : comp_out_[c]) {
      if (merge_mark_[target] == merge_stamp_) continue;
      if (comp_mark_[target] != comp_stamp_) continue;  // does not reach cu
      merge_mark_[target] = merge_stamp_;
      merged.push_back(target);
    }
  }
  stats_.condensation_bfs_nodes += merged.size();

  // Survivor: the largest member list moves the fewest labels.
  vid survivor = merged.front();
  for (vid c : merged) {
    if (members_[c].size() > members_[survivor].size()) survivor = c;
  }

  // External condensation edges of the merged set, with the internal ones
  // dropped and the neighbors' back references rewritten to the survivor.
  CompEdges ext_out;
  CompEdges ext_in;
  for (vid c : merged) {
    for (const auto& [target, count] : comp_out_[c]) {
      if (merge_mark_[target] == merge_stamp_) continue;
      ext_out[target] += count;
      comp_in_[target].erase(c);
    }
    for (const auto& [source, count] : comp_in_[c]) {
      if (merge_mark_[source] == merge_stamp_) continue;
      ext_in[source] += count;
      comp_out_[source].erase(c);
    }
  }
  for (const auto& [target, count] : ext_out) comp_in_[target][survivor] = count;
  for (const auto& [source, count] : ext_in) comp_out_[source][survivor] = count;

  for (vid c : merged) {
    if (c == survivor) continue;
    for (vid w : members_[c]) labels_[w] = survivor;
    members_[survivor].insert(members_[survivor].end(), members_[c].begin(), members_[c].end());
    free_comp(c);
  }
  comp_out_[survivor] = std::move(ext_out);
  comp_in_[survivor] = std::move(ext_in);
  num_components_ -= static_cast<vid>(merged.size() - 1);
  ++stats_.merges;
  stats_.components_merged += merged.size() - 1;
}

bool DynamicScc::reaches_within_component(vid u, vid v) {
  const vid c = labels_[u];
  ++vstamp_;
  queue_.clear();
  queue_.push_back(u);
  vmark_[u] = vstamp_;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    for (vid x : out_[queue_[head]]) {
      if (labels_[x] != c || vmark_[x] == vstamp_) continue;
      if (x == v) return true;
      vmark_[x] = vstamp_;
      queue_.push_back(x);
    }
  }
  return false;
}

void DynamicScc::local_recompute(vid c) {
  std::vector<vid> members = std::move(members_[c]);
  members_[c] = {};

  const graph::Subgraph sub =
      graph::induced_subgraph(std::span<const std::vector<vid>>(out_), members);
  scc::SccResult result = scc::run_resilient(options_.local_algorithm, sub.graph);
  std::vector<vid> sub_labels = std::move(result.labels);
  const vid k = graph::normalize_labels(sub_labels);
  ++stats_.local_recomputes;
  if (k <= 1) {
    // Defensive: the caller's reachability check proved a split, but a
    // one-component answer just restores the previous state.
    members_[c] = std::move(members);
    return;
  }

  // Detach the dirty component from the condensation, split it, and rebuild
  // every condensation edge incident to its members.
  for (const auto& [target, count] : comp_out_[c]) comp_in_[target].erase(c);
  for (const auto& [source, count] : comp_in_[c]) comp_out_[source].erase(c);
  comp_out_[c].clear();
  comp_in_[c].clear();

  std::vector<vid> ids(k);
  ids[0] = c;
  for (vid j = 1; j < k; ++j) ids[j] = alloc_comp();

  ++vstamp_;
  for (vid w : members) vmark_[w] = vstamp_;  // member set for the external test
  for (vid local = 0; local < members.size(); ++local) {
    const vid parent = sub.to_parent[local];
    const vid id = ids[sub_labels[local]];
    labels_[parent] = id;
    members_[id].push_back(parent);
  }
  for (vid w : members) {
    const vid lw = labels_[w];
    for (vid x : out_[w]) {
      const vid lx = labels_[x];
      if (lw != lx) {
        ++comp_out_[lw][lx];
        ++comp_in_[lx][lw];
      }
    }
    for (vid x : in_[w]) {
      if (vmark_[x] == vstamp_) continue;  // member -> member counted above
      const vid lx = labels_[x];
      ++comp_out_[lx][lw];
      ++comp_in_[lw][lx];
    }
  }
  num_components_ += k - 1;
  ++stats_.splits;
  stats_.components_created += k - 1;
}

bool DynamicScc::should_escalate(std::size_t dirty) const {
  const auto fraction_threshold =
      static_cast<std::size_t>(options_.escalate_fraction * static_cast<double>(n_));
  const std::size_t threshold =
      std::max<std::size_t>(options_.escalate_min_vertices, fraction_threshold);
  return dirty >= threshold;
}

void DynamicScc::rebuild_from_scratch() {
  const Digraph g = materialize_graph();
  scc::SccResult result = options_.device
                              ? scc::run_resilient_on(options_.full_algorithm, g, *options_.device)
                              : scc::run_resilient(options_.full_algorithm, g);
  std::vector<vid> labels = std::move(result.labels);
  const vid k = graph::normalize_labels(labels);
  labels_ = std::move(labels);
  members_.assign(k, {});
  comp_out_.assign(k, {});
  comp_in_.assign(k, {});
  comp_mark_.assign(k, 0);
  merge_mark_.assign(k, 0);
  comp_stamp_ = 0;
  merge_stamp_ = 0;
  free_comps_.clear();
  num_components_ = k;
  for (vid v = 0; v < n_; ++v) members_[labels_[v]].push_back(v);
  for (vid u = 0; u < n_; ++u) {
    for (vid v : out_[u]) {
      if (labels_[u] != labels_[v]) {
        ++comp_out_[labels_[u]][labels_[v]];
        ++comp_in_[labels_[v]][labels_[u]];
      }
    }
  }
}

Digraph DynamicScc::materialize_graph() const {
  std::vector<eid> offsets(n_ + 1, 0);
  for (vid v = 0; v < n_; ++v) offsets[v + 1] = offsets[v] + out_[v].size();
  std::vector<vid> targets;
  targets.reserve(num_edges_);
  for (vid v = 0; v < n_; ++v) targets.insert(targets.end(), out_[v].begin(), out_[v].end());
  return Digraph(std::move(offsets), std::move(targets));
}

vid DynamicScc::alloc_comp() {
  if (!free_comps_.empty()) {
    const vid c = free_comps_.back();
    free_comps_.pop_back();
    return c;
  }
  const vid c = static_cast<vid>(members_.size());
  members_.emplace_back();
  comp_out_.emplace_back();
  comp_in_.emplace_back();
  comp_mark_.push_back(0);
  merge_mark_.push_back(0);
  return c;
}

void DynamicScc::free_comp(vid c) {
  members_[c].clear();
  members_[c].shrink_to_fit();
  comp_out_[c].clear();
  comp_in_[c].clear();
  free_comps_.push_back(c);
}

}  // namespace ecl::dynamic
