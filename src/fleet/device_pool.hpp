#ifndef ECL_FLEET_DEVICE_POOL_HPP
#define ECL_FLEET_DEVICE_POOL_HPP

// DevicePool: N independent virtual devices behind one host (DESIGN.md §13).
//
// Each pooled device owns its own ThreadPool, fault injector, and launch
// statistics, exactly like a standalone ecl::device — the pool adds three
// things:
//
//  * a GLOBAL host-worker budget divided across the devices (floor 1 per
//    device). Without the cap, N devices each defaulting to
//    hardware_concurrency workers oversubscribe the host N-fold and the
//    "fleet" degenerates into context-switch thrash;
//  * per-device fault plans, so chaos can be pointed at one device (one
//    shard, one ordinate stream) while its peers stay clean;
//  * a per-device entry in the service's BackendHealthRegistry, so a device
//    that keeps producing faults is quarantined and routed around the same
//    way a misbehaving backend is.
//
// The pool is the substrate both fleet modes share: the GraphRouter places
// whole graphs onto pool devices for throughput, and ShardedScc spreads one
// graph's shards across them for capacity.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "device/device.hpp"
#include "service/health_registry.hpp"

namespace ecl::fleet {

struct DevicePoolConfig {
  /// Number of devices in the pool (floor 1).
  unsigned devices = 2;
  /// Profile every device is built from (fault plan overridable per device).
  device::DeviceProfile profile = device::a100_profile();
  /// Aggregate host-worker budget shared by the whole pool, divided evenly
  /// per device with a floor of 1. 0 = the host's hardware concurrency.
  unsigned thread_budget = 0;
  /// Per-device fault-plan overrides, indexed by device; devices beyond the
  /// vector's size inherit profile.fault_plan. This is how the differential
  /// suite aims seeded chaos at exactly one shard's device.
  std::vector<device::FaultPlan> fault_plans;
  /// Per-device quarantine policy (service/health_registry.hpp).
  service::HealthConfig health;
};

class DevicePool {
 public:
  explicit DevicePool(DevicePoolConfig config = {});
  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(devices_.size()); }
  device::Device& at(std::size_t i) { return *devices_.at(i); }
  const device::Device& at(std::size_t i) const { return *devices_.at(i); }

  /// Host workers each device received from the divided budget.
  unsigned workers_per_device() const noexcept { return workers_per_device_; }

  /// Per-device health registry; entry i is named "device-i".
  service::BackendHealthRegistry& health() noexcept { return *health_; }
  const service::BackendHealthRegistry& health() const noexcept { return *health_; }

  /// Quarantine gate / fault report for device i, forwarded to the registry.
  bool allow(std::size_t i) { return health_->allow(i); }
  void record(std::size_t i, service::FaultKind kind) { health_->record(i, kind); }

  /// Device names ("device-0", ...), index-aligned with at().
  const std::vector<std::string>& names() const noexcept { return names_; }

  /// Exclusive-use guard for device i: Device::launch is not re-entrant, so
  /// concurrent pool users (service workers, the sharded coordinator)
  /// serialize their launches through this per-device lock.
  std::unique_lock<std::mutex> acquire(std::size_t i) {
    return std::unique_lock<std::mutex>(*guards_.at(i));
  }

  /// Locks EVERY device, in index order (a fixed total order, so mixed
  /// acquire()/acquire_all() users cannot deadlock). The sharded engine
  /// takes the whole pool for the duration of a run.
  std::vector<std::unique_lock<std::mutex>> acquire_all();

  /// Launch statistics folded across every device in the pool.
  device::LaunchStats aggregate_stats() const;

 private:
  unsigned workers_per_device_ = 1;
  std::vector<std::unique_ptr<device::Device>> devices_;
  std::vector<std::unique_ptr<std::mutex>> guards_;
  std::vector<std::string> names_;
  std::unique_ptr<service::BackendHealthRegistry> health_;
};

/// Folds `from` into `into` element-wise, widening the per-block histogram
/// as needed — the same fold the service applies per worker, shared so the
/// pool aggregate and the service report identical shapes.
void merge_launch_stats(device::LaunchStats& into, const device::LaunchStats& from);

}  // namespace ecl::fleet

#endif  // ECL_FLEET_DEVICE_POOL_HPP
