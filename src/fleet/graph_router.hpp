#ifndef ECL_FLEET_GRAPH_ROUTER_HPP
#define ECL_FLEET_GRAPH_ROUTER_HPP

// GraphRouter: whole-graph placement onto pool devices (DESIGN.md §13).
//
// The throughput half of the fleet story: the paper's radiative-transfer
// motivation builds one independent sweep graph PER ORDINATE — dozens per
// solve — and a service sees one graph per tenant. Neither needs sharding;
// they need many whole graphs kept in flight at once. The router picks a
// device per graph with two signals:
//
//  * least-loaded — live in-flight work (estimated edges) per device, so a
//    big graph does not queue behind another big graph while a device
//    idles;
//  * affinity — a caller-supplied key (tenant ID, ordinate index) sticks to
//    the device it last ran on, unless that device has fallen behind the
//    least-loaded one by more than an imbalance factor. Warm affinity keeps
//    a tenant's repeat traffic on one device's caches and statistics.
//
// Devices quarantined by the pool's health registry are skipped; if every
// device is quarantined the least-loaded one is used anyway (serving
// somewhere beats serving nowhere — the same last-resort rule the service's
// backend chain applies).
//
// Placement returns an RAII Lease: the estimated work is added to the
// device's in-flight load on placement and released on destruction.

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fleet/device_pool.hpp"

namespace ecl::fleet {

class GraphRouter {
 public:
  static constexpr std::uint64_t kNoAffinity = ~std::uint64_t{0};

  /// A placed graph's hold on a device. Movable, not copyable; releases the
  /// in-flight load when destroyed.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { release(); }

    bool valid() const noexcept { return router_ != nullptr; }
    std::size_t device_index() const noexcept { return index_; }
    device::Device& device() { return router_->pool_.at(index_); }

    /// Early release (idempotent).
    void release() noexcept;

   private:
    friend class GraphRouter;
    Lease(GraphRouter* router, std::size_t index, std::uint64_t work)
        : router_(router), index_(index), work_(work) {}
    GraphRouter* router_ = nullptr;
    std::size_t index_ = 0;
    std::uint64_t work_ = 0;
  };

  /// `affinity_slack`: a sticky device is kept while its in-flight load is
  /// at most `affinity_slack` times the least-loaded device's load + the
  /// incoming work (so an idle fleet always honors affinity).
  explicit GraphRouter(DevicePool& pool, double affinity_slack = 2.0);

  /// Places a graph of `estimated_work` (edges is the natural unit) onto a
  /// device. `affinity_key` identifies the recurring stream (tenant,
  /// ordinate); kNoAffinity always takes the least-loaded device.
  Lease place(std::uint64_t estimated_work, std::uint64_t affinity_key = kNoAffinity);

  /// Registers work the caller has already assigned to `device` (the
  /// sharded coordinator's round-robin initial shard layout), so subsequent
  /// least-loaded decisions see the true in-flight load. Same RAII lease as
  /// place().
  Lease adopt(std::size_t device, std::uint64_t estimated_work);

  /// Least-loaded placement restricted to devices NOT marked in `excluded`
  /// (indexed by device). Exclusion is HARD — it is the failover path's
  /// ejection set, not the advisory quarantine gate: an excluded device is
  /// never chosen even when every other device is quarantined, and the
  /// returned Lease is invalid when every device is excluded. Among the
  /// non-excluded devices the usual rules apply (admitted preferred,
  /// least-loaded wins).
  Lease place_excluding(std::uint64_t estimated_work, const std::vector<char>& excluded);

  /// Current in-flight work per device (test/stats visibility).
  std::vector<std::uint64_t> load_snapshot() const;

  DevicePool& pool() noexcept { return pool_; }

 private:
  friend class Lease;
  void release(std::size_t index, std::uint64_t work) noexcept;

  DevicePool& pool_;
  double affinity_slack_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> load_;                            // guarded by mutex_
  std::unordered_map<std::uint64_t, std::size_t> affinity_;    // guarded by mutex_
};

}  // namespace ecl::fleet

#endif  // ECL_FLEET_GRAPH_ROUTER_HPP
