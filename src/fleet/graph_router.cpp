#include "fleet/graph_router.hpp"

#include <algorithm>
#include <utility>

namespace ecl::fleet {

GraphRouter::Lease& GraphRouter::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    router_ = std::exchange(other.router_, nullptr);
    index_ = other.index_;
    work_ = other.work_;
  }
  return *this;
}

void GraphRouter::Lease::release() noexcept {
  if (router_ == nullptr) return;
  router_->release(index_, work_);
  router_ = nullptr;
}

GraphRouter::GraphRouter(DevicePool& pool, double affinity_slack)
    : pool_(pool), affinity_slack_(affinity_slack), load_(pool.size(), 0) {}

GraphRouter::Lease GraphRouter::place(std::uint64_t estimated_work,
                                      std::uint64_t affinity_key) {
  // The quarantine gate mutates breaker state (half-open probe admission),
  // so query it outside our lock in a fixed pass.
  std::vector<char> allowed(pool_.size(), 1);
  bool any_allowed = false;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    allowed[i] = pool_.allow(i) ? 1 : 0;
    any_allowed = any_allowed || allowed[i];
  }

  std::lock_guard lock(mutex_);
  std::size_t least = 0;
  bool found = false;
  for (std::size_t i = 0; i < load_.size(); ++i) {
    if (any_allowed && !allowed[i]) continue;
    if (!found || load_[i] < load_[least]) {
      least = i;
      found = true;
    }
  }

  std::size_t chosen = least;
  if (affinity_key != kNoAffinity) {
    const auto it = affinity_.find(affinity_key);
    if (it != affinity_.end() && (!any_allowed || allowed[it->second])) {
      // Keep the sticky device while it has not fallen too far behind. The
      // incoming work is added to the threshold so an idle fleet (all loads
      // zero) always honors affinity.
      const double threshold =
          affinity_slack_ * static_cast<double>(load_[least] + estimated_work);
      if (static_cast<double>(load_[it->second]) <= threshold) chosen = it->second;
    }
    affinity_[affinity_key] = chosen;
  }

  load_[chosen] += estimated_work;
  return Lease(this, chosen, estimated_work);
}

GraphRouter::Lease GraphRouter::adopt(std::size_t device, std::uint64_t estimated_work) {
  std::lock_guard lock(mutex_);
  load_[device] += estimated_work;
  return Lease(this, device, estimated_work);
}

GraphRouter::Lease GraphRouter::place_excluding(std::uint64_t estimated_work,
                                                const std::vector<char>& excluded) {
  const auto is_excluded = [&](std::size_t i) { return i < excluded.size() && excluded[i]; };
  // As in place(): the quarantine gate mutates breaker state, so query it
  // outside our lock — but never for excluded devices (admitting a probe to
  // an ejected device would undo the ejection's point).
  std::vector<char> allowed(pool_.size(), 0);
  bool any_allowed = false;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    allowed[i] = (!is_excluded(i) && pool_.allow(i)) ? 1 : 0;
    any_allowed = any_allowed || allowed[i];
  }

  std::lock_guard lock(mutex_);
  std::size_t chosen = 0;
  bool found = false;
  for (std::size_t i = 0; i < load_.size(); ++i) {
    if (is_excluded(i)) continue;
    if (any_allowed && !allowed[i]) continue;
    if (!found || load_[i] < load_[chosen]) {
      chosen = i;
      found = true;
    }
  }
  if (!found) return Lease();
  load_[chosen] += estimated_work;
  return Lease(this, chosen, estimated_work);
}

std::vector<std::uint64_t> GraphRouter::load_snapshot() const {
  std::lock_guard lock(mutex_);
  return load_;
}

void GraphRouter::release(std::size_t index, std::uint64_t work) noexcept {
  std::lock_guard lock(mutex_);
  load_[index] -= std::min(load_[index], work);
}

}  // namespace ecl::fleet
