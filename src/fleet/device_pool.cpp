#include "fleet/device_pool.hpp"

#include <algorithm>
#include <thread>

namespace ecl::fleet {

DevicePool::DevicePool(DevicePoolConfig config) {
  const unsigned count = std::max(1u, config.devices);
  unsigned budget = config.thread_budget;
  if (budget == 0) budget = std::max(1u, std::thread::hardware_concurrency());
  // The budget counts WORKERS; each device's pool also runs blocks on the
  // launching thread (ThreadPool worker 0), which the divided share below
  // accounts for by flooring at 1.
  workers_per_device_ = std::max(1u, budget / count);

  devices_.reserve(count);
  names_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    device::DeviceProfile profile = config.profile;
    if (i < config.fault_plans.size()) profile.fault_plan = config.fault_plans[i];
    devices_.push_back(std::make_unique<device::Device>(profile, workers_per_device_));
    guards_.push_back(std::make_unique<std::mutex>());
    names_.push_back("device-" + std::to_string(i));
  }
  health_ = std::make_unique<service::BackendHealthRegistry>(names_, config.health);
}

std::vector<std::unique_lock<std::mutex>> DevicePool::acquire_all() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(guards_.size());
  for (auto& guard : guards_) locks.emplace_back(*guard);
  return locks;
}

device::LaunchStats DevicePool::aggregate_stats() const {
  device::LaunchStats total;
  for (const auto& dev : devices_) merge_launch_stats(total, dev->stats());
  return total;
}

void merge_launch_stats(device::LaunchStats& into, const device::LaunchStats& from) {
  into.kernel_launches += from.kernel_launches;
  into.blocks_executed += from.blocks_executed;
  into.block_iterations += from.block_iterations;
  into.spurious_replays += from.spurious_replays;
  into.imbalance_weighted += from.imbalance_weighted;
  into.imbalance_weight += from.imbalance_weight;
  if (into.block_edge_work.size() < from.block_edge_work.size())
    into.block_edge_work.resize(from.block_edge_work.size(), 0);
  for (std::size_t b = 0; b < from.block_edge_work.size(); ++b)
    into.block_edge_work[b] += from.block_edge_work[b];
}

}  // namespace ecl::fleet
