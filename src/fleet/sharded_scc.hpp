#ifndef ECL_FLEET_SHARDED_SCC_HPP
#define ECL_FLEET_SHARDED_SCC_HPP

// ShardedScc: one giant graph's fixpoint spread across pool devices
// (DESIGN.md §13) — the capacity half of the fleet story.
//
// The CSR is partitioned into K contiguous vertex ranges balanced by EDGE
// count (the same merge-path cut math as device/edge_partition.hpp); shard
// k owns every edge whose source falls in its range and keeps a FULL-SIZE
// replica of the signature arrays. One coordinator drives the three phases
// in LOCKSTEP across shards:
//
//   Phase 1   every shard re-initializes unlabeled signatures in its
//             replica (identical values: self-IDs) —— join ——
//   Phase 2   repeat: every shard runs one propagation sweep over its own
//             edges on its own device —— join —— the coordinator max-reduces
//             the replicas' signatures at the BOUNDARY vertices (targets of
//             cross-shard edges) — until no shard moved locally AND the
//             exchange moved nothing (global quiescence)
//   Detect    every shard labels its OWNED vertices where vin == vout
//   Phase 3   every shard filters its own worklist
//
// Correctness (the §13 argument in one paragraph): max-ID propagation is a
// monotone join fixpoint, so the exchange's max-reduce commutes with every
// in-kernel store and the shard order is irrelevant. Any maximizing path
// crosses shard boundaries only at boundary vertices, where the exchange
// forwards its value; at global quiescence every owner replica therefore
// holds the exact single-device fixpoint for the vertices it labels, and
// detection/edge-removal apply the same predicates to the same values —
// so the labels are BIT-IDENTICAL to a single-device run, per iteration,
// by induction. Lockstep matters: Phase 1's re-initialization is the one
// non-monotone step, so replicas are never merged across different outer
// iterations (a stale converged copy max-reduced into a freshly reset one
// would leak the previous iteration's signatures).
//
// The stitched result is held to the PR-6 contract: the certifier runs on
// it (against ONE shared reverse adjacency — see ShardedOptions::
// reverse_hint), with a bounded recovery ladder (fresh sharded rerun →
// serial Tarjan named by maximum member) behind it.
//
// Self-healing (DESIGN.md §14): the exchange barrier doubles as a
// consistent global cut — every kernel has joined and the coordinator is
// the only thread touching the replicas — so the coordinator snapshots a
// fleet checkpoint there (labels + the element-wise MAX of the replicas'
// signatures + per-shard worklists; the max-merge is sound because every
// replica value is a monotone lower bound of the iteration's fixpoint).
// When a device faults mid-run (sweep-budget trip blamed on the shards
// still reporting movement, or a health-registry ejection observed at an
// iteration boundary), the coordinator ejects the device, records the
// fault in the pool's health registry, re-homes the orphaned shards onto
// surviving devices via the router's least-loaded policy, restores the
// last checkpoint, and continues under the SAME absolute deadline — up to
// max_failovers times and only while min_devices survive; past either
// bound the error escalates to the certification ladder above. A per-shard
// sweep timer additionally flags stragglers (sweeps beyond a
// median-multiple budget), feeds them to the health registry, and can
// migrate the shard preemptively — gracefully, with no checkpoint restore,
// since a slow device's state is intact where a faulted one's is lost.

#include "core/ecl_scc.hpp"
#include "core/result.hpp"
#include "fleet/device_pool.hpp"
#include "graph/digraph.hpp"

namespace ecl::fleet {

using scc::Digraph;
using scc::SccResult;

struct ShardedOptions {
  /// Shard count K. Shards are assigned to the pool's admitted devices
  /// round-robin, so K may exceed the pool size (shards on one device run
  /// sequentially within each lockstep step). K <= 1 runs single-device on
  /// one pool device, with the same certification ladder.
  unsigned shards = 2;
  /// Kernel levers for the per-shard phases. hub_reorder, frontier_gating,
  /// min_max_signatures, and the checkpoint machinery are forced off inside
  /// the sharded engine (the coordinator owns the outer control loop; the
  /// levers that remain are pure per-shard scheduling choices and preserve
  /// bit-identical labels).
  scc::EclOptions ecl;
  /// Run the PR-6 certifier on the stitched labels and escalate through the
  /// recovery ladder on failure.
  bool certify = true;
  /// Reverse of the input graph, if the caller already holds it (the
  /// service's per-epoch cache). Null = built once here and shared by every
  /// certification in the ladder — never rebuilt per shard or per rung.
  const Digraph* reverse_hint = nullptr;
  /// Recovery ladder rung 2: fresh sharded reruns attempted (each fully
  /// certified) before falling back to serial Tarjan.
  unsigned fresh_reruns = 1;
  /// Fleet checkpointing at exchange barriers. `sweep_interval` counts
  /// EXCHANGES here (one per lockstep sweep round); a checkpoint is also
  /// taken at every outer-iteration Phase-1 join, so replay never crosses
  /// an outer iteration. `max_resumes` is unused at this level (the bound
  /// on recoveries is max_failovers). For K <= 1 the config is forwarded
  /// verbatim to the single-device engine's PR-6 resume machinery.
  scc::CheckpointConfig checkpoint;
  /// Live-failover bounds: at most this many device-ejection events are
  /// survived per run, and a failover is only attempted while at least
  /// min_devices devices remain un-ejected. Past either bound the error
  /// escalates to the fresh-rerun / serial-Tarjan ladder.
  unsigned max_failovers = 2;
  unsigned min_devices = 1;
  /// Straggler escalation: a shard whose sweep takes longer than
  /// median_multiple x the (lower-)median shard sweep time AND longer than
  /// min_seconds is flagged; `patience` consecutive flags record a
  /// kStraggler fault against its device and migrate the shard to the
  /// least-loaded surviving peer. min_seconds keeps launch-overhead noise
  /// on tiny graphs from flagging anything by default.
  struct StragglerPolicy {
    bool enabled = true;
    double median_multiple = 4.0;
    double min_seconds = 1e-3;
    unsigned patience = 2;
  } straggler;
};

/// Runs the sharded fixpoint over the pool's devices. Always returns a
/// complete labeling (max-member IDs, bit-identical to single-device
/// ecl_scc); `error` carries what was survived when a ladder rung or the
/// watchdog tripped. SccMetrics::shards / boundary_vertices /
/// exchange_rounds report the fleet accounting.
SccResult sharded_scc(const Digraph& g, DevicePool& pool, const ShardedOptions& opts = {});

/// The edge-balanced contiguous vertex cuts used to partition `g` into K
/// shards: returns K+1 offsets (cuts[0] = 0, cuts[K] = n). Exposed for the
/// differential tests and the service's shard planner.
std::vector<graph::vid> shard_cuts(const Digraph& g, unsigned shards);

}  // namespace ecl::fleet

#endif  // ECL_FLEET_SHARDED_SCC_HPP
