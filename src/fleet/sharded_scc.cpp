#include "fleet/sharded_scc.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/propagate.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "core/watchdog.hpp"
#include "device/signature_store.hpp"
#include "device/worklist.hpp"
#include "graph/condensation.hpp"
#include "graph/subgraph.hpp"
#include "support/timer.hpp"

namespace ecl::fleet {
namespace {

using device::BlockContext;
using device::EdgeWorklist;
using device::SignatureStore;
using graph::eid;
using graph::vid;
using scc::EclOptions;
using scc::SccError;
using scc::SccMetrics;
using scc::SccStatus;
using Timer = ecl::Timer;

/// One shard's private state: its owned vertex range, its worklist of owned
/// edges (src in range), and a FULL-SIZE replica of the signature arrays —
/// propagation reads and writes foreign vertices (targets, path-compression
/// lifts) in the shard's own replica; only the boundary exchange moves
/// values between replicas.
struct Shard {
  vid begin = 0;
  vid end = 0;
  std::size_t device = 0;  ///< pool device index
  std::unique_ptr<EdgeWorklist> worklist;
  std::unique_ptr<SignatureStore> sigs;
  std::atomic<std::uint32_t> changed{0};
  std::atomic<std::uint64_t> edges_processed{0};
  std::atomic<std::uint64_t> block_iterations{0};
};

/// Completes a partial labeling with Tarjan on the unlabeled residual,
/// naming each residual component by its maximum parent member — the same
/// degradation the single-device solver applies, so even a tripped sharded
/// run returns labels in ECL's max-ID namespace.
void serial_fallback_max(const Digraph& g, SccResult& result) {
  const vid n = g.num_vertices();
  std::vector<std::uint8_t> active(n, 0);
  std::uint64_t residual = 0;
  for (vid v = 0; v < n; ++v) {
    if (result.labels[v] == graph::kInvalidVid) {
      active[v] = 1;
      ++residual;
    }
  }
  result.metrics.serial_fallback = true;
  result.metrics.fallback_vertices = residual;
  if (residual == 0) return;
  const graph::Subgraph sub = graph::induced_subgraph(g, active);
  const SccResult serial = scc::tarjan(sub.graph);
  std::vector<vid> comp_max(serial.num_components, 0);
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
    vid& top = comp_max[serial.labels[i]];
    top = std::max(top, sub.to_parent[i]);
  }
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i)
    result.labels[sub.to_parent[i]] = comp_max[serial.labels[i]];
}

/// Certification gate, mirroring the registry ladder's: complete labels AND
/// a passing certificate, errors upgraded to the structured cause.
bool certified(const Digraph& g, SccResult& result, const Digraph* reverse_hint) {
  const bool complete =
      result.labels.size() == g.num_vertices() &&
      std::none_of(result.labels.begin(), result.labels.end(),
                   [](vid l) { return l == graph::kInvalidVid; });
  if (!complete) {
    if (result.ok()) result.error = {SccStatus::kVerifyFailed, "labeling is incomplete"};
    return false;
  }
  scc::CertifyOptions copts;
  copts.reverse_hint = reverse_hint;
  const scc::CertifyReport cert = scc::certify_scc(g, result.labels, copts);
  result.metrics.certify_seconds += cert.seconds;
  if (cert.ok) {
    result.metrics.certified = true;
    return true;
  }
  result.error = {SccStatus::kCertificationFailed, cert.message};
  return false;
}

void merge_recovery_metrics(SccMetrics& into, const SccMetrics& from) {
  into.watchdog_trips += from.watchdog_trips;
  into.certify_seconds += from.certify_seconds;
  into.fresh_reruns += from.fresh_reruns;
  into.exchange_rounds += from.exchange_rounds;
}

/// One full lockstep sharded run (no certification — the ladder wraps it).
SccResult run_sharded_once(const Digraph& g, DevicePool& pool, unsigned num_shards,
                           const EclOptions& eo) {
  const vid n = g.num_vertices();
  SccResult result;
  result.metrics.shards = num_shards;
  if (n == 0) return result;

  // Devices admitted by the pool's health registry; a fully-quarantined
  // pool still serves (somewhere beats nowhere — the service chain's rule).
  std::vector<std::size_t> admitted;
  for (std::size_t i = 0; i < pool.size(); ++i)
    if (pool.allow(i)) admitted.push_back(i);
  if (admitted.empty())
    for (std::size_t i = 0; i < pool.size(); ++i) admitted.push_back(i);

  const std::vector<vid> cuts = shard_cuts(g, num_shards);
  const std::span<const eid> offsets = g.offsets();
  const std::span<const vid> targets = g.targets();

  std::vector<Shard> shards(num_shards);
  for (unsigned k = 0; k < num_shards; ++k) {
    Shard& sh = shards[k];
    sh.begin = cuts[k];
    sh.end = cuts[k + 1];
    sh.device = admitted[k % admitted.size()];
    std::vector<graph::Edge> owned;
    owned.reserve(static_cast<std::size_t>(offsets[sh.end] - offsets[sh.begin]));
    for (vid u = sh.begin; u < sh.end; ++u)
      for (eid j = offsets[u]; j < offsets[u + 1]; ++j) owned.push_back({u, targets[j]});
    sh.worklist = std::make_unique<EdgeWorklist>(std::span<const graph::Edge>(owned));
    sh.sigs = std::make_unique<SignatureStore>(n, /*with_min=*/false, eo.padded_signatures);
  }

  // Boundary set: targets of cross-shard edges — the only vertices whose
  // values must move between replicas (see the header's correctness note).
  std::vector<vid> boundary;
  {
    std::vector<std::uint8_t> is_boundary(n, 0);
    for (const Shard& sh : shards)
      for (vid u = sh.begin; u < sh.end; ++u)
        for (eid j = offsets[u]; j < offsets[u + 1]; ++j) {
          const vid v = targets[j];
          if (v < sh.begin || v >= sh.end) is_boundary[v] = 1;
        }
    for (vid v = 0; v < n; ++v)
      if (is_boundary[v]) boundary.push_back(v);
  }
  result.metrics.boundary_vertices = boundary.size();

  std::vector<vid> labels(n, graph::kInvalidVid);
  std::atomic<std::uint64_t> labeled{0};
  std::atomic<std::uint64_t> edges_removed{0};

  // Shards grouped by device: a device is not re-entrant, so its shards run
  // sequentially inside each lockstep step, on one host thread per device.
  std::vector<std::vector<std::size_t>> groups;
  {
    std::vector<std::size_t> slot(pool.size(), static_cast<std::size_t>(-1));
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (slot[shards[s].device] == static_cast<std::size_t>(-1)) {
        slot[shards[s].device] = groups.size();
        groups.emplace_back();
      }
      groups[slot[shards[s].device]].push_back(s);
    }
  }

  // Runs fn(shard) for every shard, devices in parallel. The join is the
  // lockstep barrier: every cross-replica read below happens strictly
  // after it, so the coordinator's exchange needs no further locking.
  const auto par = [&](auto&& fn) {
    if (groups.size() == 1) {
      for (std::size_t s : groups[0]) fn(shards[s]);
      return;
    }
    std::vector<std::thread> threads;
    threads.reserve(groups.size());
    for (const auto& group : groups)
      threads.emplace_back([&fn, &shards, &group] {
        for (std::size_t s : group) fn(shards[s]);
      });
    for (auto& t : threads) t.join();
  };

  const auto fault_of = [&](const Shard& sh) -> device::FaultInjector* {
    device::Device& dev = pool.at(sh.device);
    if (dev.fault_active() &&
        (dev.fault().plan().delayed_visibility || dev.fault().plan().lost_update))
      return &dev.fault();
    return nullptr;
  };

  scc::FixpointWatchdog watchdog(eo.watchdog, n);
  const std::uint64_t guard =
      eo.max_outer_iterations ? eo.max_outer_iterations : static_cast<std::uint64_t>(n) + 2;
  const std::uint64_t sweep_budget = watchdog.phase2_round_budget();

  std::vector<std::uint64_t> launches_before(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    launches_before[i] = pool.at(i).stats().kernel_launches;

  // Every shard re-initializes ALL unlabeled vertices of its replica (it
  // reads foreign signatures through its own copy), to the same self-ID
  // values — so replicas enter each iteration's Phase 2 identical.
  const auto phase1 = [&](Shard& sh) {
    device::Device& dev = pool.at(sh.device);
    dev.launch(
        scc::detail::grid_size(dev, n, eo.persistent_threads),
        [&](const BlockContext& ctx) {
          ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t v = lo; v < hi; ++v) {
              if (labels[v] == graph::kInvalidVid) {
                sh.sigs->vin(v).store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
                sh.sigs->vout(v).store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              }
            }
          });
        },
        {.idempotent = true, .work_stealing = eo.work_stealing});
  };

  // One propagation sweep over the shard's own edges (async mode re-iterates
  // blocks to a local fixed point, exactly like the single-device kernel).
  const auto sweep = [&](Shard& sh) {
    const auto edges = sh.worklist->edges();
    const std::uint64_t m = edges.size();
    sh.changed.store(0, std::memory_order_relaxed);
    if (m == 0) return;
    device::Device& dev = pool.at(sh.device);
    device::FaultInjector* fault = fault_of(sh);
    dev.launch(
        scc::detail::grid_size(dev, m, eo.persistent_threads),
        [&](const BlockContext& ctx) {
          const scc::detail::SigView view{*sh.sigs, fault};
          std::uint64_t local_processed = 0;
          std::uint64_t local_assigned = 0;
          std::uint64_t local_iters = 0;
          bool local_changed;
          do {
            local_changed = false;
            ++local_iters;
            scc::detail::for_each_owned(
                ctx, m, eo.edge_balanced, [&](std::uint64_t lo, std::uint64_t hi) {
                  if (local_iters == 1) local_assigned += hi - lo;
                  for (std::uint64_t i = lo; i < hi; ++i) {
                    ++local_processed;
                    local_changed |= scc::detail::propagate_edge(view, edges[i], eo, 0);
                  }
                });
          } while (eo.async_phase2 && local_changed && local_iters < sweep_budget &&
                   !watchdog.expired());
          if (local_changed || (eo.async_phase2 && local_iters > 1))
            sh.changed.store(1, std::memory_order_relaxed);
          sh.block_iterations.fetch_add(local_iters, std::memory_order_relaxed);
          sh.edges_processed.fetch_add(local_processed, std::memory_order_relaxed);
          dev.record_block_work(ctx.block_id, local_assigned);
        },
        {.idempotent = true, .work_stealing = eo.work_stealing});
  };

  // Cross-shard boundary exchange: a symmetric max-reduce over every
  // replica's copy of each (still unlabeled) boundary vertex. Runs on the
  // coordinator between sweep joins, so it is race-free by construction;
  // max-ID propagation is monotone, so the merge commutes with the
  // in-kernel stores and the shard/merge order is irrelevant.
  const auto exchange = [&]() -> bool {
    bool any = false;
    for (const vid v : boundary) {
      if (labels[v] != graph::kInvalidVid) continue;
      std::uint32_t best_in = 0;
      std::uint32_t best_out = 0;
      for (const Shard& sh : shards) {
        best_in = std::max(best_in, sh.sigs->vin(v).load(std::memory_order_relaxed));
        best_out = std::max(best_out, sh.sigs->vout(v).load(std::memory_order_relaxed));
      }
      for (const Shard& sh : shards) {
        if (sh.sigs->vin(v).load(std::memory_order_relaxed) < best_in) {
          sh.sigs->vin(v).store(best_in, std::memory_order_relaxed);
          any = true;
        }
        if (sh.sigs->vout(v).load(std::memory_order_relaxed) < best_out) {
          sh.sigs->vout(v).store(best_out, std::memory_order_relaxed);
          any = true;
        }
      }
    }
    return any;
  };

  // Detection over OWNED vertices only: at global quiescence the owner
  // replica holds the true fixpoint for its range, and owned ranges are
  // disjoint so the shared label array is written race-free.
  const auto detect = [&](Shard& sh) {
    const std::uint64_t span = sh.end - sh.begin;
    if (span == 0) return;
    device::Device& dev = pool.at(sh.device);
    dev.launch(
        scc::detail::grid_size(dev, span, eo.persistent_threads),
        [&](const BlockContext& ctx) {
          std::uint64_t local = 0;
          ctx.for_each_chunk(span, [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i) {
              const vid v = sh.begin + static_cast<vid>(i);
              if (labels[v] != graph::kInvalidVid) continue;
              const std::uint32_t in = sh.sigs->vin(v).load(std::memory_order_relaxed);
              const std::uint32_t out = sh.sigs->vout(v).load(std::memory_order_relaxed);
              if (in == out) {
                labels[v] = in;
                ++local;
              }
            }
          });
          labeled.fetch_add(local, std::memory_order_relaxed);
        },
        {.idempotent = true, .work_stealing = eo.work_stealing});
  };

  // Phase 3 on the shard's own worklist. Cross-shard targets are boundary
  // vertices, so the shard's replica holds fixpoint-correct signatures for
  // BOTH endpoints of every owned edge — the drop predicate is evaluated on
  // exactly the values a single-device run would use.
  const auto phase3 = [&](Shard& sh) {
    const auto edges = sh.worklist->edges();
    const std::uint64_t m = edges.size();
    if (m == 0) return;
    device::Device& dev = pool.at(sh.device);
    dev.launch(
        scc::detail::grid_size(dev, m, eo.persistent_threads),
        [&](const BlockContext& ctx) {
          EdgeWorklist::ChunkAppender chunk(*sh.worklist);
          std::uint64_t local_examined = 0;
          scc::detail::for_each_owned(
              ctx, m, eo.edge_balanced, [&](std::uint64_t lo, std::uint64_t hi) {
                local_examined += hi - lo;
                for (std::uint64_t i = lo; i < hi; ++i) {
                  const graph::Edge e = edges[i];
                  const std::uint32_t iu = sh.sigs->vin(e.src).load(std::memory_order_relaxed);
                  const std::uint32_t iv = sh.sigs->vin(e.dst).load(std::memory_order_relaxed);
                  const std::uint32_t ou = sh.sigs->vout(e.src).load(std::memory_order_relaxed);
                  const std::uint32_t ov = sh.sigs->vout(e.dst).load(std::memory_order_relaxed);
                  if (iu != iv || ou != ov) continue;  // spans SCCs: drop
                  if (eo.remove_scc_edges && labels[e.src] != graph::kInvalidVid)
                    continue;  // inside a completed SCC (§3.3)
                  if (eo.chunked_worklist)
                    chunk.push(e);
                  else
                    sh.worklist->push_next(e);
                }
              });
          dev.record_block_work(ctx.block_id, local_examined);
        },
        {.idempotent = false, .work_stealing = eo.work_stealing});
    const std::size_t before = sh.worklist->size();
    sh.worklist->swap_buffers();
    edges_removed.fetch_add(before - sh.worklist->size(), std::memory_order_relaxed);
  };

  // ---- The lockstep outer loop -------------------------------------------
  while (labeled.load(std::memory_order_relaxed) < n) {
    if (++result.metrics.outer_iterations > guard) {
      result.error = {SccStatus::kIterationGuard,
                      "sharded_scc: outer loop exceeded iteration guard"};
      break;
    }
    if (watchdog.deadline_expired()) {
      watchdog.mark_stalled();
      ++result.metrics.watchdog_trips;
      result.error = {SccStatus::kDeadlineExceeded,
                      "sharded_scc: request deadline expired between iterations"};
      break;
    }

    Timer phase_timer;
    par(phase1);
    result.metrics.phase1_seconds += phase_timer.seconds();

    phase_timer.reset();
    bool converged = true;
    bool deadline = false;
    std::uint64_t rounds = 0;
    for (;;) {
      if (++rounds > sweep_budget || watchdog.expired()) {
        converged = false;
        deadline = watchdog.deadline_expired();
        break;
      }
      par(sweep);
      ++result.metrics.propagation_rounds;
      bool moved = false;
      for (const Shard& sh : shards) moved |= sh.changed.load(std::memory_order_relaxed) != 0;
      if (shards.size() > 1) {
        // Global quiescence needs BOTH silences: no shard moved locally and
        // the boundary exchange moved nothing. An exchange that raises any
        // copy forces another sweep everywhere — a stale boundary read is
        // monotone-sound, but only another sweep propagates the fresh value.
        moved |= exchange();
        ++result.metrics.exchange_rounds;
      }
      if (!moved) break;
    }
    result.metrics.phase2_seconds += phase_timer.seconds();
    if (!converged) {
      watchdog.mark_stalled();
      ++result.metrics.watchdog_trips;
      result.error =
          deadline ? SccError{SccStatus::kDeadlineExceeded,
                              "sharded_scc: request deadline expired mid-fixpoint"}
                   : SccError{SccStatus::kStalled,
                              "sharded_scc: lockstep phase-2 exceeded its sweep budget"};
      break;
    }

    phase_timer.reset();
    par(detect);
    par(phase3);
    result.metrics.phase3_seconds += phase_timer.seconds();

    bool overflowed = false;
    std::uint64_t worklist_total = 0;
    for (Shard& sh : shards) {
      overflowed = overflowed || sh.worklist->overflowed();
      worklist_total += sh.worklist->size();
    }
    if (overflowed) {
      std::uint64_t dropped = 0;
      for (Shard& sh : shards) dropped += sh.worklist->dropped_edges();
      result.metrics.edges_dropped += dropped;
      result.error = {SccStatus::kWorklistOverflow,
                      "sharded_scc: a shard worklist overflowed during phase 3 (" +
                          std::to_string(dropped) + " edges dropped)"};
      break;
    }
    if (watchdog.observe_iteration(labeled.load(std::memory_order_relaxed), worklist_total)) {
      ++result.metrics.watchdog_trips;
      result.error = {SccStatus::kStalled,
                      "sharded_scc: no new labels and no worklist shrinkage for " +
                          std::to_string(eo.watchdog.stall_rounds) + " iterations"};
      break;
    }
  }

  for (Shard& sh : shards) {
    result.metrics.edges_processed += sh.edges_processed.load(std::memory_order_relaxed);
    const std::uint64_t iters = sh.block_iterations.load(std::memory_order_relaxed);
    result.metrics.block_iterations += iters;
    pool.at(sh.device).stats().block_iterations += iters;
  }
  result.metrics.edges_removed = edges_removed.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < pool.size(); ++i)
    result.metrics.kernel_launches += pool.at(i).stats().kernel_launches - launches_before[i];

  result.labels = std::move(labels);
  // The fleet contract is always-complete labels (the labeled set at any
  // break is a union of complete SCCs, so the residual solves independently).
  if (result.error) serial_fallback_max(g, result);
  std::vector<vid> dense(result.labels.begin(), result.labels.end());
  result.num_components = graph::normalize_labels(dense);
  return result;
}

}  // namespace

std::vector<vid> shard_cuts(const Digraph& g, unsigned shards) {
  const vid n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  const unsigned count = std::max(1u, shards);
  std::vector<vid> cuts(count + 1, n);
  cuts[0] = 0;
  const std::span<const eid> offsets = g.offsets();
  for (unsigned k = 1; k < count; ++k) {
    if (m == 0) {
      // No edges to balance: fall back to equal vertex ranges.
      cuts[k] = static_cast<vid>(static_cast<std::uint64_t>(n) * k / count);
    } else {
      // The vertex owning the k-th equal-edge cut (merge-path math from
      // device/edge_partition.hpp). owner_of is monotone in the edge index,
      // so the cuts are non-decreasing.
      const device::EdgeSpan span = device::equal_edge_span(k, count, m);
      cuts[k] = static_cast<vid>(std::min<std::size_t>(device::owner_of(offsets, span.begin), n));
    }
  }
  for (unsigned k = 1; k <= count; ++k) cuts[k] = std::max(cuts[k], cuts[k - 1]);
  return cuts;
}

SccResult sharded_scc(const Digraph& g, DevicePool& pool, const ShardedOptions& opts) {
  const unsigned num_shards = std::max(1u, opts.shards);

  // The coordinator owns the outer control loop, so the solver-internal
  // machinery that assumes a single device is forced off: hub_reorder
  // (whole-graph permutation), min/max signatures (min side would need its
  // own exchange), frontier gating (epoch clocks are per shard, and an
  // exchange-raised value would have to re-stamp foreign epochs), and
  // checkpointed resume (the ladder below recovers at run granularity).
  EclOptions eo = opts.ecl;
  eo.hub_reorder = false;
  eo.min_max_signatures = false;
  eo.frontier_gating = false;
  eo.checkpoint.enabled = false;
  eo.phase2_hook = nullptr;

  const auto attempt = [&]() -> SccResult {
    if (num_shards <= 1) {
      // Degenerate fleet: whole graph on the first admitted device, same
      // kernels, same certification ladder.
      std::size_t index = 0;
      for (std::size_t i = 0; i < pool.size(); ++i)
        if (pool.allow(i)) {
          index = i;
          break;
        }
      SccResult r = scc::ecl_scc(g, pool.at(index), eo);
      r.metrics.shards = 1;
      return r;
    }
    return run_sharded_once(g, pool, num_shards, eo);
  };

  SccResult result = attempt();
  if (!opts.certify) return result;

  // Satellite fix: ONE reverse adjacency for the whole ladder — the
  // stitched certificate and every recovery rung share it (previously each
  // certification call rebuilt its own).
  std::optional<Digraph> local_reverse;
  const Digraph* reverse = opts.reverse_hint;
  if (reverse == nullptr) {
    local_reverse.emplace(g.reverse());
    reverse = &*local_reverse;
  }

  if (certified(g, result, reverse)) return result;

  for (unsigned attempt_index = 0; attempt_index < opts.fresh_reruns; ++attempt_index) {
    SccResult rerun = attempt();
    merge_recovery_metrics(rerun.metrics, result.metrics);
    ++rerun.metrics.fresh_reruns;
    if (certified(g, rerun, reverse)) return rerun;
    result = std::move(rerun);
  }

  // Final rung: serial Tarjan, renamed to max-member IDs so even the
  // fallback stays bit-identical to single-device ECL naming.
  SccResult final = std::move(result);
  const SccResult serial = scc::tarjan(g);
  std::vector<vid> comp_max(serial.num_components, 0);
  for (vid v = 0; v < g.num_vertices(); ++v)
    comp_max[serial.labels[v]] = std::max(comp_max[serial.labels[v]], v);
  final.labels.resize(g.num_vertices());
  for (vid v = 0; v < g.num_vertices(); ++v) final.labels[v] = comp_max[serial.labels[v]];
  final.num_components = serial.num_components;
  final.metrics.serial_fallback = true;
  final.metrics.fallback_vertices = g.num_vertices();
  final.metrics.certified = false;
  if (const SccError ladder_error = final.error; certified(g, final, reverse))
    final.error = ladder_error;  // keep what was survived; labels are good
  return final;
}

}  // namespace ecl::fleet
