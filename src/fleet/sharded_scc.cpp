#include "fleet/sharded_scc.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/propagate.hpp"
#include "core/tarjan.hpp"
#include "core/verify.hpp"
#include "core/watchdog.hpp"
#include "device/atomics.hpp"
#include "device/signature_store.hpp"
#include "device/worklist.hpp"
#include "fleet/graph_router.hpp"
#include "graph/condensation.hpp"
#include "graph/subgraph.hpp"
#include "support/timer.hpp"

namespace ecl::fleet {
namespace {

using device::BlockContext;
using device::EdgeWorklist;
using device::SignatureStore;
using graph::eid;
using graph::vid;
using scc::EclOptions;
using scc::SccError;
using scc::SccMetrics;
using scc::SccStatus;
using Timer = ecl::Timer;

/// One shard's private state: its owned vertex range, its worklist of owned
/// edges (src in range), and a FULL-SIZE replica of the signature arrays —
/// propagation reads and writes foreign vertices (targets, path-compression
/// lifts) in the shard's own replica; only the boundary exchange moves
/// values between replicas.
struct Shard {
  vid begin = 0;
  vid end = 0;
  std::size_t device = 0;  ///< pool device index
  std::unique_ptr<EdgeWorklist> worklist;
  std::unique_ptr<SignatureStore> sigs;
  /// Degree-one chain index over THIS shard's worklist (DESIGN.md §15).
  /// Foreign vertices have no owned out-edge, so their succ slot is kNone
  /// and a chase stops at the shard boundary — the boundary exchange, not
  /// the chaser, moves values across shards. Rebuilt lazily (chain_dirty)
  /// whenever the worklist changes: initially, after Phase-3 compaction,
  /// and after a checkpoint restore.
  scc::detail::ChainIndex chain;
  bool chain_dirty = true;
  std::atomic<std::uint32_t> changed{0};
  std::atomic<std::uint64_t> edges_processed{0};
  std::atomic<std::uint64_t> block_iterations{0};
  std::atomic<std::uint64_t> chains_collapsed{0};
  std::atomic<std::uint64_t> chain_steps{0};
  std::atomic<std::uint64_t> max_chain_len{0};
  /// Wall-clock of this shard's last sweep launch, written by its device's
  /// group thread and read by the coordinator strictly after the lockstep
  /// join (straggler detection).
  double sweep_seconds = 0.0;
  unsigned straggler_streak = 0;  ///< consecutive over-budget sweeps
};

/// A coordinator-held snapshot at a consistent global cut (exchange barrier
/// or Phase-1 join: every kernel joined, coordinator sole owner of the
/// replicas). Signatures are the element-wise MAX across replicas — sound
/// because every replica value is a monotone lower bound of the current
/// outer iteration's fixpoint, and restoring all replicas to the merged
/// state keeps propagation inside [init, fixpoint], converging to the same
/// labels. Worklists travel per shard (Phase 3 mutates them, and the
/// snapshot must restore the pre-trip filter state).
struct FleetCheckpoint {
  bool valid = false;
  std::vector<vid> labels;
  std::vector<std::uint32_t> vin, vout;
  std::vector<std::vector<graph::Edge>> worklists;
  std::uint64_t labeled = 0;
  std::uint64_t edges_removed = 0;
};

/// Completes a partial labeling with Tarjan on the unlabeled residual,
/// naming each residual component by its maximum parent member — the same
/// degradation the single-device solver applies, so even a tripped sharded
/// run returns labels in ECL's max-ID namespace.
void serial_fallback_max(const Digraph& g, SccResult& result) {
  const vid n = g.num_vertices();
  std::vector<std::uint8_t> active(n, 0);
  std::uint64_t residual = 0;
  for (vid v = 0; v < n; ++v) {
    if (result.labels[v] == graph::kInvalidVid) {
      active[v] = 1;
      ++residual;
    }
  }
  result.metrics.serial_fallback = true;
  result.metrics.fallback_vertices = residual;
  if (residual == 0) return;
  const graph::Subgraph sub = graph::induced_subgraph(g, active);
  const SccResult serial = scc::tarjan(sub.graph);
  std::vector<vid> comp_max(serial.num_components, 0);
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
    vid& top = comp_max[serial.labels[i]];
    top = std::max(top, sub.to_parent[i]);
  }
  for (std::size_t i = 0; i < sub.to_parent.size(); ++i)
    result.labels[sub.to_parent[i]] = comp_max[serial.labels[i]];
}

/// Certification gate, mirroring the registry ladder's: complete labels AND
/// a passing certificate, errors upgraded to the structured cause.
bool certified(const Digraph& g, SccResult& result, const Digraph* reverse_hint) {
  const bool complete =
      result.labels.size() == g.num_vertices() &&
      std::none_of(result.labels.begin(), result.labels.end(),
                   [](vid l) { return l == graph::kInvalidVid; });
  if (!complete) {
    if (result.ok()) result.error = {SccStatus::kVerifyFailed, "labeling is incomplete"};
    return false;
  }
  scc::CertifyOptions copts;
  copts.reverse_hint = reverse_hint;
  const scc::CertifyReport cert = scc::certify_scc(g, result.labels, copts);
  result.metrics.certify_seconds += cert.seconds;
  if (cert.ok) {
    result.metrics.certified = true;
    return true;
  }
  result.error = {SccStatus::kCertificationFailed, cert.message};
  return false;
}

void merge_recovery_metrics(SccMetrics& into, const SccMetrics& from) {
  into.watchdog_trips += from.watchdog_trips;
  into.certify_seconds += from.certify_seconds;
  into.fresh_reruns += from.fresh_reruns;
  into.exchange_rounds += from.exchange_rounds;
  into.checkpoints_taken += from.checkpoints_taken;
  into.resumes += from.resumes;
  into.rounds_replayed += from.rounds_replayed;
  into.recovery_seconds += from.recovery_seconds;
  into.failovers += from.failovers;
  into.shards_rehomed += from.shards_rehomed;
  into.stragglers_flagged += from.stragglers_flagged;
  into.straggler_migrations += from.straggler_migrations;
  into.pool_last_resort = into.pool_last_resort || from.pool_last_resort;
}

/// One full lockstep sharded run (no certification — the ladder wraps it).
SccResult run_sharded_once(const Digraph& g, DevicePool& pool, unsigned num_shards,
                           const ShardedOptions& opts, const EclOptions& eo) {
  const vid n = g.num_vertices();
  SccResult result;
  result.metrics.shards = num_shards;
  if (n == 0) return result;

  // Devices admitted by the pool's health registry; a fully-quarantined
  // pool still serves (somewhere beats nowhere — the service chain's rule),
  // with the last-resort decision flagged rather than implicit.
  std::vector<std::size_t> admitted;
  for (std::size_t i = 0; i < pool.size(); ++i)
    if (pool.allow(i)) admitted.push_back(i);
  if (admitted.empty()) {
    result.metrics.pool_last_resort = true;
    for (std::size_t i = 0; i < pool.size(); ++i) admitted.push_back(i);
  }
  // When the registry's verdict was overridden above, the mid-run ejection
  // poll must stand down too — ejecting the devices we just decided to
  // serve on anyway would fail every run before its first sweep.
  const bool last_resort = result.metrics.pool_last_resort;

  const std::vector<vid> cuts = shard_cuts(g, num_shards);
  const std::span<const eid> offsets = g.offsets();
  const std::span<const vid> targets = g.targets();

  std::vector<Shard> shards(num_shards);
  for (unsigned k = 0; k < num_shards; ++k) {
    Shard& sh = shards[k];
    sh.begin = cuts[k];
    sh.end = cuts[k + 1];
    sh.device = admitted[k % admitted.size()];
    std::vector<graph::Edge> owned;
    owned.reserve(static_cast<std::size_t>(offsets[sh.end] - offsets[sh.begin]));
    for (vid u = sh.begin; u < sh.end; ++u)
      for (eid j = offsets[u]; j < offsets[u + 1]; ++j) owned.push_back({u, targets[j]});
    sh.worklist = std::make_unique<EdgeWorklist>(std::span<const graph::Edge>(owned));
    sh.sigs = std::make_unique<SignatureStore>(n, /*with_min=*/false, eo.padded_signatures);
  }

  // Boundary set: targets of cross-shard edges — the only vertices whose
  // values must move between replicas (see the header's correctness note).
  std::vector<vid> boundary;
  {
    std::vector<std::uint8_t> is_boundary(n, 0);
    for (const Shard& sh : shards)
      for (vid u = sh.begin; u < sh.end; ++u)
        for (eid j = offsets[u]; j < offsets[u + 1]; ++j) {
          const vid v = targets[j];
          if (v < sh.begin || v >= sh.end) is_boundary[v] = 1;
        }
    for (vid v = 0; v < n; ++v)
      if (is_boundary[v]) boundary.push_back(v);
  }
  result.metrics.boundary_vertices = boundary.size();

  std::vector<vid> labels(n, graph::kInvalidVid);
  std::atomic<std::uint64_t> labeled{0};
  std::atomic<std::uint64_t> edges_removed{0};

  // The coordinator routes re-homed shards through the same least-loaded
  // policy whole-graph traffic uses; the initial round-robin layout is
  // adopted into the router so its load accounting is true from the start.
  GraphRouter router(pool);
  std::vector<GraphRouter::Lease> leases(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s)
    leases[s] = router.adopt(shards[s].device,
                             std::max<std::uint64_t>(1, shards[s].worklist->size()));

  // Shards grouped by device: a device is not re-entrant, so its shards run
  // sequentially inside each lockstep step, on one host thread per device.
  // Rebuilt whenever failover or straggler migration moves a shard.
  std::vector<std::vector<std::size_t>> groups;
  const auto rebuild_groups = [&] {
    groups.clear();
    std::vector<std::size_t> slot(pool.size(), static_cast<std::size_t>(-1));
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (slot[shards[s].device] == static_cast<std::size_t>(-1)) {
        slot[shards[s].device] = groups.size();
        groups.emplace_back();
      }
      groups[slot[shards[s].device]].push_back(s);
    }
  };
  rebuild_groups();

  // Runs fn(shard) for every shard, devices in parallel. The join is the
  // lockstep barrier: every cross-replica read below happens strictly
  // after it, so the coordinator's exchange needs no further locking.
  const auto par = [&](auto&& fn) {
    if (groups.size() == 1) {
      for (std::size_t s : groups[0]) fn(shards[s]);
      return;
    }
    std::vector<std::thread> threads;
    threads.reserve(groups.size());
    for (const auto& group : groups)
      threads.emplace_back([&fn, &shards, &group] {
        for (std::size_t s : group) fn(shards[s]);
      });
    for (auto& t : threads) t.join();
  };

  const auto fault_of = [&](const Shard& sh) -> device::FaultInjector* {
    device::Device& dev = pool.at(sh.device);
    if (dev.fault_active() &&
        (dev.fault().plan().delayed_visibility || dev.fault().plan().lost_update))
      return &dev.fault();
    return nullptr;
  };

  // Re-emplaced on checkpoint restore: fresh stall counters, same absolute
  // deadline (eo.watchdog.deadline is a wall-clock time point).
  std::optional<scc::FixpointWatchdog> watchdog;
  watchdog.emplace(eo.watchdog, n);
  const std::uint64_t guard =
      eo.max_outer_iterations ? eo.max_outer_iterations : static_cast<std::uint64_t>(n) + 2;
  const std::uint64_t sweep_budget = watchdog->phase2_round_budget();

  std::vector<std::uint64_t> launches_before(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    launches_before[i] = pool.at(i).stats().kernel_launches;

  // Every shard re-initializes ALL unlabeled vertices of its replica (it
  // reads foreign signatures through its own copy), to the same self-ID
  // values — so replicas enter each iteration's Phase 2 identical.
  const auto phase1 = [&](Shard& sh) {
    device::Device& dev = pool.at(sh.device);
    dev.launch(
        scc::detail::grid_size(dev, n, eo.persistent_threads),
        [&](const BlockContext& ctx) {
          ctx.for_each_chunk(n, [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t v = lo; v < hi; ++v) {
              if (labels[v] == graph::kInvalidVid) {
                sh.sigs->vin(v).store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
                sh.sigs->vout(v).store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
              }
            }
          });
        },
        {.idempotent = true, .work_stealing = eo.work_stealing});
  };

  // One propagation sweep over the shard's own edges (async mode re-iterates
  // blocks to a local fixed point, exactly like the single-device kernel).
  const auto sweep = [&](Shard& sh) {
    const auto edges = sh.worklist->edges();
    const std::uint64_t m = edges.size();
    sh.changed.store(0, std::memory_order_relaxed);
    sh.sweep_seconds = 0.0;
    if (m == 0) return;
    const Timer sweep_timer;
    device::Device& dev = pool.at(sh.device);
    device::FaultInjector* fault = fault_of(sh);
    // Chain index over the shard's own worklist (callers of sweep are
    // barrier-separated from the points that set chain_dirty, so the lazy
    // rebuild is race-free even when shards sweep concurrently).
    if (eo.chain_chasing && sh.chain_dirty) {
      sh.chain.build(n, edges);
      sh.chain_dirty = false;
    }
    const bool chasing = eo.chain_chasing && sh.chain.useful();
    dev.launch(
        scc::detail::grid_size(dev, m, eo.persistent_threads),
        [&](const BlockContext& ctx) {
          const scc::detail::SigView view{*sh.sigs, fault};
          std::uint64_t local_processed = 0;
          std::uint64_t local_assigned = 0;
          std::uint64_t local_iters = 0;
          std::uint64_t local_chains = 0;
          std::uint64_t local_steps = 0;
          std::uint64_t local_longest = 0;
          bool local_changed;
          do {
            local_changed = false;
            ++local_iters;
            scc::detail::for_each_owned(
                ctx, m, eo.edge_balanced, [&](std::uint64_t lo, std::uint64_t hi) {
                  if (local_iters == 1) local_assigned += hi - lo;
                  for (std::uint64_t i = lo; i < hi; ++i) {
                    ++local_processed;
                    const bool moved = scc::detail::propagate_edge(view, edges[i], eo, 0);
                    if (moved && chasing) {
                      const scc::detail::ChaseResult cr =
                          scc::detail::chase_chain(view, sh.chain, edges[i], eo, 0);
                      if (cr.moved != 0) {
                        ++local_chains;
                        local_steps += cr.moved;
                        local_longest = std::max<std::uint64_t>(local_longest, cr.moved);
                      }
                      local_processed += cr.steps;
                    }
                    local_changed |= moved;
                  }
                });
          } while (eo.async_phase2 && local_changed && local_iters < sweep_budget &&
                   !watchdog->expired());
          if (local_changed || (eo.async_phase2 && local_iters > 1))
            sh.changed.store(1, std::memory_order_relaxed);
          sh.block_iterations.fetch_add(local_iters, std::memory_order_relaxed);
          sh.edges_processed.fetch_add(local_processed, std::memory_order_relaxed);
          if (local_chains != 0) {
            sh.chains_collapsed.fetch_add(local_chains, std::memory_order_relaxed);
            sh.chain_steps.fetch_add(local_steps, std::memory_order_relaxed);
            device::atomic_fetch_max_u64(sh.max_chain_len, local_longest);
          }
          dev.record_block_work(ctx.block_id, local_assigned);
        },
        {.idempotent = true, .work_stealing = eo.work_stealing});
    sh.sweep_seconds = sweep_timer.seconds();
  };

  // Cross-shard boundary exchange: a symmetric max-reduce over every
  // replica's copy of each (still unlabeled) boundary vertex. Runs on the
  // coordinator between sweep joins, so it is race-free by construction;
  // max-ID propagation is monotone, so the merge commutes with the
  // in-kernel stores and the shard/merge order is irrelevant.
  const auto exchange = [&]() -> bool {
    bool any = false;
    for (const vid v : boundary) {
      if (labels[v] != graph::kInvalidVid) continue;
      std::uint32_t best_in = 0;
      std::uint32_t best_out = 0;
      for (const Shard& sh : shards) {
        best_in = std::max(best_in, sh.sigs->vin(v).load(std::memory_order_relaxed));
        best_out = std::max(best_out, sh.sigs->vout(v).load(std::memory_order_relaxed));
      }
      for (const Shard& sh : shards) {
        if (sh.sigs->vin(v).load(std::memory_order_relaxed) < best_in) {
          sh.sigs->vin(v).store(best_in, std::memory_order_relaxed);
          any = true;
        }
        if (sh.sigs->vout(v).load(std::memory_order_relaxed) < best_out) {
          sh.sigs->vout(v).store(best_out, std::memory_order_relaxed);
          any = true;
        }
      }
    }
    return any;
  };

  // Detection over OWNED vertices only: at global quiescence the owner
  // replica holds the true fixpoint for its range, and owned ranges are
  // disjoint so the shared label array is written race-free.
  const auto detect = [&](Shard& sh) {
    const std::uint64_t span = sh.end - sh.begin;
    if (span == 0) return;
    device::Device& dev = pool.at(sh.device);
    dev.launch(
        scc::detail::grid_size(dev, span, eo.persistent_threads),
        [&](const BlockContext& ctx) {
          std::uint64_t local = 0;
          ctx.for_each_chunk(span, [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i) {
              const vid v = sh.begin + static_cast<vid>(i);
              if (labels[v] != graph::kInvalidVid) continue;
              const std::uint32_t in = sh.sigs->vin(v).load(std::memory_order_relaxed);
              const std::uint32_t out = sh.sigs->vout(v).load(std::memory_order_relaxed);
              if (in == out) {
                labels[v] = in;
                ++local;
              }
            }
          });
          labeled.fetch_add(local, std::memory_order_relaxed);
        },
        {.idempotent = true, .work_stealing = eo.work_stealing});
  };

  // Phase 3 on the shard's own worklist. Cross-shard targets are boundary
  // vertices, so the shard's replica holds fixpoint-correct signatures for
  // BOTH endpoints of every owned edge — the drop predicate is evaluated on
  // exactly the values a single-device run would use.
  const auto phase3 = [&](Shard& sh) {
    const auto edges = sh.worklist->edges();
    const std::uint64_t m = edges.size();
    if (m == 0) return;
    device::Device& dev = pool.at(sh.device);
    dev.launch(
        scc::detail::grid_size(dev, m, eo.persistent_threads),
        [&](const BlockContext& ctx) {
          EdgeWorklist::ChunkAppender chunk(*sh.worklist);
          std::uint64_t local_examined = 0;
          scc::detail::for_each_owned(
              ctx, m, eo.edge_balanced, [&](std::uint64_t lo, std::uint64_t hi) {
                local_examined += hi - lo;
                for (std::uint64_t i = lo; i < hi; ++i) {
                  const graph::Edge e = edges[i];
                  const std::uint32_t iu = sh.sigs->vin(e.src).load(std::memory_order_relaxed);
                  const std::uint32_t iv = sh.sigs->vin(e.dst).load(std::memory_order_relaxed);
                  const std::uint32_t ou = sh.sigs->vout(e.src).load(std::memory_order_relaxed);
                  const std::uint32_t ov = sh.sigs->vout(e.dst).load(std::memory_order_relaxed);
                  if (iu != iv || ou != ov) continue;  // spans SCCs: drop
                  if (eo.remove_scc_edges && labels[e.src] != graph::kInvalidVid)
                    continue;  // inside a completed SCC (§3.3)
                  if (eo.chunked_worklist)
                    chunk.push(e);
                  else
                    sh.worklist->push_next(e);
                }
              });
          dev.record_block_work(ctx.block_id, local_examined);
        },
        {.idempotent = false, .work_stealing = eo.work_stealing});
    const std::size_t before = sh.worklist->size();
    sh.worklist->swap_buffers();
    sh.chain_dirty = true;  // worklist changed: next sweep rebuilds the chains
    edges_removed.fetch_add(before - sh.worklist->size(), std::memory_order_relaxed);
  };

  // ---- Self-healing machinery (DESIGN.md §14) ------------------------------

  FleetCheckpoint ckpt;
  std::uint64_t rounds_since_ckpt = 0;  ///< sweeps discarded if restored now
  std::vector<char> ejected(pool.size(), 0);
  std::optional<Timer> recovery_timer;  ///< armed at the FIRST fault detection

  const auto take_checkpoint = [&] {
    if (!opts.checkpoint.enabled) return;
    ckpt.labels = labels;
    ckpt.labeled = labeled.load(std::memory_order_relaxed);
    ckpt.edges_removed = edges_removed.load(std::memory_order_relaxed);
    ckpt.vin.assign(n, 0);
    ckpt.vout.assign(n, 0);
    for (const Shard& sh : shards)
      for (vid v = 0; v < n; ++v) {
        ckpt.vin[v] = std::max(ckpt.vin[v], sh.sigs->vin(v).load(std::memory_order_relaxed));
        ckpt.vout[v] = std::max(ckpt.vout[v], sh.sigs->vout(v).load(std::memory_order_relaxed));
      }
    ckpt.worklists.resize(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const auto edges = shards[s].worklist->edges();
      ckpt.worklists[s].assign(edges.begin(), edges.end());
    }
    ckpt.valid = true;
    rounds_since_ckpt = 0;
    ++result.metrics.checkpoints_taken;
  };

  const auto restore_checkpoint = [&] {
    labels = ckpt.labels;
    labeled.store(ckpt.labeled, std::memory_order_relaxed);
    edges_removed.store(ckpt.edges_removed, std::memory_order_relaxed);
    for (std::size_t s = 0; s < shards.size(); ++s) {
      Shard& sh = shards[s];
      for (vid v = 0; v < n; ++v) {
        sh.sigs->vin(v).store(ckpt.vin[v], std::memory_order_relaxed);
        sh.sigs->vout(v).store(ckpt.vout[v], std::memory_order_relaxed);
      }
      sh.worklist->reset(std::span<const graph::Edge>(ckpt.worklists[s]));
      sh.chain_dirty = true;  // restored worklist: chains must be rebuilt
      sh.changed.store(0, std::memory_order_relaxed);
      sh.straggler_streak = 0;
    }
    result.metrics.rounds_replayed += rounds_since_ckpt;
    rounds_since_ckpt = 0;
    // Fresh stall counters, SAME absolute deadline (it travels inside
    // eo.watchdog.deadline): re-emplacement is how atomics get reset.
    watchdog.emplace(eo.watchdog, n);
  };

  const auto survivor_count = [&] {
    std::size_t alive = 0;
    for (std::size_t d = 0; d < pool.size(); ++d) alive += ejected[d] ? 0 : 1;
    return alive;
  };

  // Re-homes every shard on an ejected device via the router's least-loaded
  // policy; false when no non-ejected device is left to place on.
  const auto rehome_orphans = [&]() -> bool {
    for (std::size_t s = 0; s < shards.size(); ++s) {
      Shard& sh = shards[s];
      if (!ejected[sh.device]) continue;
      leases[s].release();
      GraphRouter::Lease next =
          router.place_excluding(std::max<std::uint64_t>(1, sh.worklist->size()), ejected);
      if (!next.valid()) return false;
      sh.device = next.device_index();
      leases[s] = std::move(next);
      ++result.metrics.shards_rehomed;
    }
    rebuild_groups();
    return true;
  };

  // Sweep-budget trip: blame the devices of the shards still reporting
  // movement in the last completed sweep (under a stuck-store fault the
  // faulty shard keeps reporting `changed` while its healthy peers quiesce,
  // so the flags isolate the culprit), record the stall against them, and —
  // within the failover bounds — re-home their shards, restore the last
  // exchange-boundary checkpoint, and continue. False = escalate.
  const auto try_failover = [&]() -> bool {
    std::vector<std::size_t> blamed;
    for (const Shard& sh : shards)
      if (sh.changed.load(std::memory_order_relaxed) != 0 && !ejected[sh.device])
        blamed.push_back(sh.device);
    if (blamed.empty()) return false;
    if (!recovery_timer) recovery_timer.emplace();
    for (const std::size_t d : blamed) {
      if (ejected[d]) continue;  // blamed twice within one trip (two shards)
      ejected[d] = 1;
      pool.record(d, service::FaultKind::kStall);
    }
    if (!ckpt.valid || survivor_count() < opts.min_devices ||
        result.metrics.failovers >= opts.max_failovers)
      return false;
    ++result.metrics.failovers;
    if (!rehome_orphans()) return false;
    restore_checkpoint();
    return true;
  };

  // Iteration-boundary poll: a device quarantined mid-run (straggler
  // records, concurrent recorders) is ejected here. Its replica is deemed
  // lost with it, so after re-homing the last checkpoint is restored — the
  // boundary state itself is quiescent, but work done by a now-distrusted
  // device since the snapshot is not worth standing on. Returns 0 = nothing
  // happened, 1 = restored (skip Phase 1), -1 = escalate.
  const auto poll_ejections = [&]() -> int {
    if (last_resort) return 0;  // the registry's verdict is already overridden
    bool any = false;
    for (const Shard& sh : shards) {
      if (ejected[sh.device]) continue;
      if (!pool.allow(sh.device)) {
        ejected[sh.device] = 1;
        any = true;
      }
    }
    if (!any) return 0;
    if (!recovery_timer) recovery_timer.emplace();
    if (survivor_count() < opts.min_devices ||
        result.metrics.failovers >= opts.max_failovers)
      return -1;
    ++result.metrics.failovers;
    if (!rehome_orphans()) return -1;
    if (!ckpt.valid) return 0;  // nothing snapshotted yet: Phase 1 runs fresh
    restore_checkpoint();
    return 1;
  };

  // Straggler detection after each sweep join: a shard slower than the
  // median-multiple budget (and the absolute noise floor) earns a flag;
  // `patience` consecutive flags record a kStraggler fault and migrate the
  // shard to the least-loaded surviving peer. Migration is graceful — the
  // device is slow, not faulted, so its replica state is intact and no
  // checkpoint restore is needed. The lower median keeps K = 2 sane (the
  // upper median would be the straggler's own time).
  const auto check_stragglers = [&] {
    if (!opts.straggler.enabled || shards.size() < 2) return;
    std::vector<double> sorted;
    sorted.reserve(shards.size());
    for (const Shard& sh : shards) sorted.push_back(sh.sweep_seconds);
    const std::size_t mid = (sorted.size() - 1) / 2;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                     sorted.end());
    const double median = sorted[mid];
    for (std::size_t s = 0; s < shards.size(); ++s) {
      Shard& sh = shards[s];
      const bool slow = sh.sweep_seconds > opts.straggler.min_seconds &&
                        sh.sweep_seconds > opts.straggler.median_multiple * median;
      if (!slow) {
        sh.straggler_streak = 0;
        continue;
      }
      ++sh.straggler_streak;
      ++result.metrics.stragglers_flagged;
      if (sh.straggler_streak < opts.straggler.patience) continue;
      sh.straggler_streak = 0;
      pool.record(sh.device, service::FaultKind::kStraggler);
      std::vector<char> avoid = ejected;
      avoid[sh.device] = 1;
      GraphRouter::Lease next =
          router.place_excluding(std::max<std::uint64_t>(1, sh.worklist->size()), avoid);
      if (!next.valid()) continue;  // nowhere to go: keep limping
      leases[s].release();
      sh.device = next.device_index();
      leases[s] = std::move(next);
      ++result.metrics.straggler_migrations;
      rebuild_groups();
    }
  };

  // ---- The lockstep outer loop -------------------------------------------
  bool skip_phase1 = false;  // set by a failover restore: straight to Phase 2
  while (labeled.load(std::memory_order_relaxed) < n) {
    if (++result.metrics.outer_iterations > guard) {
      result.error = {SccStatus::kIterationGuard,
                      "sharded_scc: outer loop exceeded iteration guard"};
      break;
    }
    if (watchdog->deadline_expired()) {
      watchdog->mark_stalled();
      ++result.metrics.watchdog_trips;
      result.error = {SccStatus::kDeadlineExceeded,
                      "sharded_scc: request deadline expired between iterations"};
      break;
    }

    bool run_phase1 = !skip_phase1;
    skip_phase1 = false;
    if (run_phase1) {
      const int polled = poll_ejections();
      if (polled < 0) {
        result.error = {SccStatus::kStalled,
                        "sharded_scc: device ejection exhausted the failover budget (" +
                            std::to_string(result.metrics.failovers) + " survived)"};
        break;
      }
      if (polled == 1) run_phase1 = false;  // restored at a post-Phase-1 cut
    }

    Timer phase_timer;
    if (run_phase1) {
      par(phase1);
      result.metrics.phase1_seconds += phase_timer.seconds();
      // Every checkpoint is taken at a post-Phase-1 cut of SOME iteration,
      // so replay never crosses the one non-monotone step (the re-init).
      take_checkpoint();
    }

    phase_timer.reset();
    bool converged = true;
    bool deadline = false;
    std::uint64_t rounds = 0;
    for (;;) {
      if (++rounds > sweep_budget || watchdog->expired()) {
        converged = false;
        deadline = watchdog->deadline_expired();
        break;
      }
      par(sweep);
      ++result.metrics.propagation_rounds;
      ++rounds_since_ckpt;
      check_stragglers();
      bool moved = false;
      for (const Shard& sh : shards) moved |= sh.changed.load(std::memory_order_relaxed) != 0;
      if (shards.size() > 1) {
        // Global quiescence needs BOTH silences: no shard moved locally and
        // the boundary exchange moved nothing. An exchange that raises any
        // copy forces another sweep everywhere — a stale boundary read is
        // monotone-sound, but only another sweep propagates the fresh value.
        moved |= exchange();
        ++result.metrics.exchange_rounds;
        // The exchange barrier is the coordinated checkpoint cut: all
        // kernels joined, replicas owned by this thread alone.
        if (moved && opts.checkpoint.enabled &&
            rounds_since_ckpt >= std::max<std::uint64_t>(1, opts.checkpoint.sweep_interval))
          take_checkpoint();
      }
      if (!moved) break;
    }
    result.metrics.phase2_seconds += phase_timer.seconds();
    if (!converged) {
      watchdog->mark_stalled();
      ++result.metrics.watchdog_trips;
      if (!deadline && try_failover()) {
        skip_phase1 = true;  // the restored cut is post-Phase-1
        continue;
      }
      result.error =
          deadline ? SccError{SccStatus::kDeadlineExceeded,
                              "sharded_scc: request deadline expired mid-fixpoint"}
                   : SccError{SccStatus::kStalled,
                              "sharded_scc: lockstep phase-2 exceeded its sweep budget"};
      break;
    }

    phase_timer.reset();
    par(detect);
    par(phase3);
    result.metrics.phase3_seconds += phase_timer.seconds();

    bool overflowed = false;
    std::uint64_t worklist_total = 0;
    for (Shard& sh : shards) {
      overflowed = overflowed || sh.worklist->overflowed();
      worklist_total += sh.worklist->size();
    }
    if (overflowed) {
      std::uint64_t dropped = 0;
      for (Shard& sh : shards) dropped += sh.worklist->dropped_edges();
      result.metrics.edges_dropped += dropped;
      result.error = {SccStatus::kWorklistOverflow,
                      "sharded_scc: a shard worklist overflowed during phase 3 (" +
                          std::to_string(dropped) + " edges dropped)"};
      break;
    }
    if (watchdog->observe_iteration(labeled.load(std::memory_order_relaxed), worklist_total)) {
      ++result.metrics.watchdog_trips;
      result.error = {SccStatus::kStalled,
                      "sharded_scc: no new labels and no worklist shrinkage for " +
                          std::to_string(eo.watchdog.stall_rounds) + " iterations"};
      break;
    }
  }
  // Recovery latency: first fault detection -> end of this run (the ladder
  // adds its own rungs' time on top when the run still escalates).
  if (recovery_timer) result.metrics.recovery_seconds = recovery_timer->seconds();

  for (Shard& sh : shards) {
    result.metrics.edges_processed += sh.edges_processed.load(std::memory_order_relaxed);
    const std::uint64_t iters = sh.block_iterations.load(std::memory_order_relaxed);
    result.metrics.block_iterations += iters;
    pool.at(sh.device).stats().block_iterations += iters;
    const std::uint64_t sh_chains = sh.chains_collapsed.load(std::memory_order_relaxed);
    result.metrics.chains_collapsed += sh_chains;
    result.metrics.chain_steps += sh.chain_steps.load(std::memory_order_relaxed);
    result.metrics.max_chain_len = std::max(
        result.metrics.max_chain_len, sh.max_chain_len.load(std::memory_order_relaxed));
    pool.at(sh.device).stats().chains_collapsed += sh_chains;
  }
  result.metrics.edges_removed = edges_removed.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < pool.size(); ++i)
    result.metrics.kernel_launches += pool.at(i).stats().kernel_launches - launches_before[i];

  result.labels = std::move(labels);
  // The fleet contract is always-complete labels (the labeled set at any
  // break is a union of complete SCCs, so the residual solves independently).
  if (result.error) serial_fallback_max(g, result);
  std::vector<vid> dense(result.labels.begin(), result.labels.end());
  result.num_components = graph::normalize_labels(dense);
  return result;
}

}  // namespace

std::vector<vid> shard_cuts(const Digraph& g, unsigned shards) {
  const vid n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  const unsigned count = std::max(1u, shards);
  std::vector<vid> cuts(count + 1, n);
  cuts[0] = 0;
  const std::span<const eid> offsets = g.offsets();
  for (unsigned k = 1; k < count; ++k) {
    if (m == 0) {
      // No edges to balance: fall back to equal vertex ranges.
      cuts[k] = static_cast<vid>(static_cast<std::uint64_t>(n) * k / count);
    } else {
      // The vertex owning the k-th equal-edge cut (merge-path math from
      // device/edge_partition.hpp). owner_of is monotone in the edge index,
      // so the cuts are non-decreasing.
      const device::EdgeSpan span = device::equal_edge_span(k, count, m);
      cuts[k] = static_cast<vid>(std::min<std::size_t>(device::owner_of(offsets, span.begin), n));
    }
  }
  for (unsigned k = 1; k <= count; ++k) cuts[k] = std::max(cuts[k], cuts[k - 1]);
  return cuts;
}

SccResult sharded_scc(const Digraph& g, DevicePool& pool, const ShardedOptions& opts) {
  const unsigned num_shards = std::max(1u, opts.shards);

  // The coordinator owns the outer control loop, so the solver-internal
  // machinery that assumes a single device is forced off: hub_reorder
  // (whole-graph permutation), min/max signatures (min side would need its
  // own exchange), and frontier gating (epoch clocks are per shard, and an
  // exchange-raised value would have to re-stamp foreign epochs). The
  // checkpoint config is NOT forced off any more: for K > 1 the coordinator
  // runs its own exchange-barrier checkpoints (run_sharded_once), and for
  // K <= 1 it is forwarded to the single-device engine's resume machinery.
  EclOptions eo = opts.ecl;
  eo.hub_reorder = false;
  eo.min_max_signatures = false;
  eo.frontier_gating = false;
  eo.phase2_hook = nullptr;
  // The hash-bag sparse frontier assumes one device observes every movement;
  // a shard's bag cannot see exchange-raised boundary values, so the lever
  // is forced off. Chain chasing stays ON: each shard's index covers only
  // its owned edges, so chases are confined to the shard and the usual
  // boundary exchange remains the sole cross-shard channel.
  eo.hashbag_frontier = false;

  const auto attempt = [&]() -> SccResult {
    if (num_shards <= 1) {
      // Degenerate fleet: whole graph on the first admitted device, same
      // kernels, same certification ladder. When NO device is admitted this
      // serves on device 0 anyway — deliberately (serving somewhere beats
      // serving nowhere, the router's last-resort rule) — and says so in
      // the metrics rather than falling through silently.
      std::size_t index = 0;
      bool any_admitted = false;
      for (std::size_t i = 0; i < pool.size(); ++i)
        if (pool.allow(i)) {
          index = i;
          any_admitted = true;
          break;
        }
      EclOptions single = eo;
      single.checkpoint = opts.checkpoint;
      SccResult r = scc::ecl_scc(g, pool.at(index), single);
      r.metrics.shards = 1;
      r.metrics.pool_last_resort = !any_admitted;
      return r;
    }
    // The coordinator checkpoints at exchange barriers instead of inside
    // the per-shard kernels (a kernel-level resume would only rewind one
    // replica and break lockstep).
    EclOptions sharded_eo = eo;
    sharded_eo.checkpoint.enabled = false;
    return run_sharded_once(g, pool, num_shards, opts, sharded_eo);
  };

  SccResult result = attempt();
  if (!opts.certify) return result;

  // Satellite fix: ONE reverse adjacency for the whole ladder — the
  // stitched certificate and every recovery rung share it (previously each
  // certification call rebuilt its own).
  std::optional<Digraph> local_reverse;
  const Digraph* reverse = opts.reverse_hint;
  if (reverse == nullptr) {
    local_reverse.emplace(g.reverse());
    reverse = &*local_reverse;
  }

  if (certified(g, result, reverse)) return result;

  for (unsigned attempt_index = 0; attempt_index < opts.fresh_reruns; ++attempt_index) {
    SccResult rerun = attempt();
    merge_recovery_metrics(rerun.metrics, result.metrics);
    ++rerun.metrics.fresh_reruns;
    if (certified(g, rerun, reverse)) return rerun;
    result = std::move(rerun);
  }

  // Final rung: serial Tarjan, renamed to max-member IDs so even the
  // fallback stays bit-identical to single-device ECL naming.
  SccResult final = std::move(result);
  const SccResult serial = scc::tarjan(g);
  std::vector<vid> comp_max(serial.num_components, 0);
  for (vid v = 0; v < g.num_vertices(); ++v)
    comp_max[serial.labels[v]] = std::max(comp_max[serial.labels[v]], v);
  final.labels.resize(g.num_vertices());
  for (vid v = 0; v < g.num_vertices(); ++v) final.labels[v] = comp_max[serial.labels[v]];
  final.num_components = serial.num_components;
  final.metrics.serial_fallback = true;
  final.metrics.fallback_vertices = g.num_vertices();
  final.metrics.certified = false;
  if (const SccError ladder_error = final.error; certified(g, final, reverse))
    final.error = ladder_error;  // keep what was survived; labels are good
  return final;
}

}  // namespace ecl::fleet
